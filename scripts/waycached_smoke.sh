#!/usr/bin/env bash
# Smoke test for the waycached HTTP service over real binaries: start a
# multi-tenant server (-workers 4, bearer auth) over a fresh on-disk
# store, submit three overlapping jobs concurrently, stream one to
# completion over SSE, and require the served record bytes (JSON and
# CSV) to be identical to what the offline cmd/sweep CLI emits
# *serially* (-workers 1) for the same grid — the determinism contract
# at any budget. Also checks auth enforcement and online log compaction.
# Run from the repo root; CI runs it on every push.
set -euo pipefail

ADDR=127.0.0.1:18080
BASE="http://$ADDR"
TOKEN="smoke-secret"
AUTH=(-H "Authorization: Bearer $TOKEN")
WORK=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/waycached" ./cmd/waycached
go build -o "$WORK/sweep" ./cmd/sweep

"$WORK/waycached" -addr "$ADDR" -store "$WORK/store" -workers 4 \
  -auth-tokens "ci=$TOKEN" >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 50 ]; then
    echo "waycached never became healthy:" >&2
    cat "$WORK/server.log" >&2
    exit 1
  fi
  sleep 0.2
done

# Auth is enforced: no token is 401 with a Bearer challenge, while
# /healthz stays open for probes (verified above).
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/api/v1/jobs")
[ "$CODE" = 401 ] || { echo "unauthenticated request = $CODE, want 401" >&2; exit 1; }

submit() {
  local body=$1
  local resp id
  resp=$(curl -sf "${AUTH[@]}" -X POST "$BASE/api/v1/jobs" -d "$body")
  id=$(echo "$resp" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
  [ -n "$id" ] || { echo "no job id in: $resp" >&2; exit 1; }
  echo "$id"
}

# Three overlapping jobs submitted back to back run concurrently under
# the shared 4-slot budget (one per "client" would need three tokens;
# shared fairness across clients is asserted by TestMultiClientStress —
# here the concurrency itself and the byte contract are on trial).
ID1=$(submit '{
  "Benchmarks": ["gcc", "swim"],
  "DPolicies": ["parallel", "seldm+waypred"],
  "DWays": [2, 4],
  "Insts": 20000
}')
ID2=$(submit '{
  "Benchmarks": ["gcc", "perl"],
  "DPolicies": ["parallel", "seldm+waypred"],
  "DWays": [2, 4],
  "Insts": 20000
}')
ID3=$(submit '{
  "Benchmarks": ["swim", "li"],
  "DPolicies": ["parallel", "seldm+waypred"],
  "DWays": [2, 4],
  "Insts": 20000
}')

# The scheduler reports the configured budget.
curl -sf "${AUTH[@]}" "$BASE/api/v1/stats" | grep -q '"budget": 4' || {
  echo "stats missing scheduler budget:" >&2
  curl -s "${AUTH[@]}" "$BASE/api/v1/stats" >&2
  exit 1
}

# Job 1 is tracked over the SSE events stream — no polling — which must
# end with a terminal status event.
timeout 300 curl -sfN "${AUTH[@]}" "$BASE/api/v1/jobs/$ID1/events" >"$WORK/events.log" || {
  echo "events stream for $ID1 failed:" >&2
  cat "$WORK/events.log" >&2
  exit 1
}
tail -n 5 "$WORK/events.log" | grep -q '"state":"done"' || {
  echo "events stream did not end in a done event:" >&2
  tail -n 5 "$WORK/events.log" >&2
  exit 1
}

poll_done() {
  local id=$1
  for i in $(seq 1 300); do
    STATE=$(curl -sf "${AUTH[@]}" "$BASE/api/v1/jobs/$id" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
    case "$STATE" in
      done) return 0 ;;
      failed) echo "job $id failed:" >&2; curl -s "${AUTH[@]}" "$BASE/api/v1/jobs/$id" >&2; exit 1 ;;
    esac
    if [ "$i" = 300 ]; then echo "job $id stuck in state $STATE" >&2; exit 1; fi
    sleep 1
  done
}
poll_done "$ID2"
poll_done "$ID3"

curl -sf "${AUTH[@]}" "$BASE/api/v1/jobs/$ID1/results" >"$WORK/served.json"
curl -sf "${AUTH[@]}" "$BASE/api/v1/jobs/$ID1/results?format=csv" >"$WORK/served.csv"

# Offline *serial* reference (-workers 1) over its own disk store, run
# twice: the first run simulates and persists, the second must recall
# everything ("0 simulated") with byte-identical output — the
# incremental -store acceptance property, exercised on the real CLI.
# Diffing the concurrent server's bytes against a serial run is the
# any-budget determinism gate.
"$WORK/sweep" -benchmarks gcc,swim -dpolicies parallel,seldm+waypred \
  -dways 2,4 -insts 20000 -workers 1 -progress=false -store "$WORK/clistore" \
  -out "$WORK/offline.json" 2>"$WORK/sweep1.log"
"$WORK/sweep" -benchmarks gcc,swim -dpolicies parallel,seldm+waypred \
  -dways 2,4 -insts 20000 -workers 1 -progress=false -store "$WORK/clistore" \
  -out "$WORK/offline2.json" 2>"$WORK/sweep2.log"
grep -q ' 0 simulated, 8 memo hits' "$WORK/sweep2.log" || {
  echo "second -store run was not served from disk:" >&2
  cat "$WORK/sweep2.log" >&2
  exit 1
}
cmp "$WORK/offline.json" "$WORK/offline2.json" || { echo "-store replay changed sweep output" >&2; exit 1; }
"$WORK/sweep" -benchmarks gcc,swim -dpolicies parallel,seldm+waypred \
  -dways 2,4 -insts 20000 -workers 1 -progress=false -store "$WORK/clistore" \
  -format csv -out "$WORK/offline.csv" 2>"$WORK/sweep3.log"
grep -q ' 0 simulated,' "$WORK/sweep3.log" || { echo "CSV -store run re-simulated" >&2; exit 1; }

cmp "$WORK/served.json" "$WORK/offline.json" || { echo "served JSON differs from serial cmd/sweep output" >&2; exit 1; }
cmp "$WORK/served.csv" "$WORK/offline.csv" || { echo "served CSV differs from serial cmd/sweep output" >&2; exit 1; }

# Online compaction answers with stats (a fresh store has no garbage to
# reclaim) and must not disturb the served corpus.
COMPACT=$(curl -sf "${AUTH[@]}" -X POST "$BASE/api/v1/admin/compact")
echo "$COMPACT" | grep -q '"reclaimedBytes"' || {
  echo "compact response missing stats: $COMPACT" >&2
  exit 1
}
curl -sf "${AUTH[@]}" "$BASE/api/v1/jobs/$ID1/results" >"$WORK/served-after-compact.json"
cmp "$WORK/served.json" "$WORK/served-after-compact.json" || {
  echo "compaction changed served results" >&2
  exit 1
}

echo "waycached smoke test: OK (jobs $ID1 $ID2 $ID3 concurrent at budget 4, served bytes identical to serial cmd/sweep)"
