#!/usr/bin/env bash
# Smoke test for the waycached HTTP service: start a server over a fresh
# on-disk store, submit a small grid, poll it to completion, and require
# the served record bytes (JSON and CSV) to be identical to what the
# offline cmd/sweep CLI emits for the same grid. Run from the repo root;
# CI runs it on every push.
set -euo pipefail

ADDR=127.0.0.1:18080
BASE="http://$ADDR"
WORK=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/waycached" ./cmd/waycached
go build -o "$WORK/sweep" ./cmd/sweep

"$WORK/waycached" -addr "$ADDR" -store "$WORK/store" >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 50 ]; then
    echo "waycached never became healthy:" >&2
    cat "$WORK/server.log" >&2
    exit 1
  fi
  sleep 0.2
done

JOB=$(curl -sf -X POST "$BASE/api/v1/jobs" -d '{
  "Benchmarks": ["gcc", "swim"],
  "DPolicies": ["parallel", "seldm+waypred"],
  "DWays": [2, 4],
  "Insts": 20000
}')
ID=$(echo "$JOB" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "no job id in: $JOB" >&2; exit 1; }

for i in $(seq 1 300); do
  STATE=$(curl -sf "$BASE/api/v1/jobs/$ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
  case "$STATE" in
    done) break ;;
    failed) echo "job failed:" >&2; curl -s "$BASE/api/v1/jobs/$ID" >&2; exit 1 ;;
  esac
  if [ "$i" = 300 ]; then echo "job $ID stuck in state $STATE" >&2; exit 1; fi
  sleep 1
done

curl -sf "$BASE/api/v1/jobs/$ID/results" >"$WORK/served.json"
curl -sf "$BASE/api/v1/jobs/$ID/results?format=csv" >"$WORK/served.csv"

# Offline reference over its own disk store, run twice: the first run
# simulates and persists, the second must recall everything ("0
# simulated") with byte-identical output — the incremental -store
# acceptance property, exercised on the real CLI.
"$WORK/sweep" -benchmarks gcc,swim -dpolicies parallel,seldm+waypred \
  -dways 2,4 -insts 20000 -progress=false -store "$WORK/clistore" \
  -out "$WORK/offline.json" 2>"$WORK/sweep1.log"
"$WORK/sweep" -benchmarks gcc,swim -dpolicies parallel,seldm+waypred \
  -dways 2,4 -insts 20000 -progress=false -store "$WORK/clistore" \
  -out "$WORK/offline2.json" 2>"$WORK/sweep2.log"
grep -q ' 0 simulated, 8 memo hits' "$WORK/sweep2.log" || {
  echo "second -store run was not served from disk:" >&2
  cat "$WORK/sweep2.log" >&2
  exit 1
}
cmp "$WORK/offline.json" "$WORK/offline2.json" || { echo "-store replay changed sweep output" >&2; exit 1; }
"$WORK/sweep" -benchmarks gcc,swim -dpolicies parallel,seldm+waypred \
  -dways 2,4 -insts 20000 -progress=false -store "$WORK/clistore" \
  -format csv -out "$WORK/offline.csv" 2>"$WORK/sweep3.log"
grep -q ' 0 simulated,' "$WORK/sweep3.log" || { echo "CSV -store run re-simulated" >&2; exit 1; }

cmp "$WORK/served.json" "$WORK/offline.json" || { echo "served JSON differs from cmd/sweep output" >&2; exit 1; }
cmp "$WORK/served.csv" "$WORK/offline.csv" || { echo "served CSV differs from cmd/sweep output" >&2; exit 1; }

# The corpus query over the disk store must serve the same records too.
curl -sf "$BASE/api/v1/results" >"$WORK/corpus.json"
cmp "$WORK/corpus.json" "$WORK/offline.json" || { echo "corpus query differs from cmd/sweep output" >&2; exit 1; }

echo "waycached smoke test: OK (job $ID, served bytes identical to cmd/sweep)"
