#!/usr/bin/env bash
# Distributed-sweep smoke test: start two local waycached hosts, exercise
# job cancellation on one of them (a cancelled job must reach the terminal
# "cancelled" state and must not starve the runner), then run a
# two-host coordinator sweep (cmd/sweepctl) over the determinism-gate grid
# and require the merged JSON to be byte-identical to the checked-in
# single-host golden fixture (testdata/golden_sweep.json). Finally, the
# trace-distribution leg: convert a fixture trace with traceconv, upload
# it to ONE host only, sweep it via trace://<hash> across both hosts
# (the coordinator must push it to the second host — neither host has a
# pre-provisioned trace directory), and byte-diff the merged output
# against a local single-host cmd/sweep run of the same reference. Run
# from the repo root; CI runs it on every push.
set -euo pipefail

ADDR1=127.0.0.1:18091
ADDR2=127.0.0.1:18092
BASE1="http://$ADDR1"
WORK=$(mktemp -d)
PID1=""
PID2=""
trap 'kill ${PID1:-} ${PID2:-} 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/waycached" ./cmd/waycached
go build -o "$WORK/sweepctl" ./cmd/sweepctl
go build -o "$WORK/traceconv" ./cmd/traceconv
go build -o "$WORK/sweep" ./cmd/sweep

# Each host gets a fresh, empty trace store — no pre-provisioned traces
# anywhere; the trace leg below relies on coordinator distribution alone.
"$WORK/waycached" -addr "$ADDR1" -tracestore "$WORK/ts1" >"$WORK/host1.log" 2>&1 &
PID1=$!
"$WORK/waycached" -addr "$ADDR2" -tracestore "$WORK/ts2" >"$WORK/host2.log" 2>&1 &
PID2=$!

for base in "$BASE1" "http://$ADDR2"; do
  for i in $(seq 1 50); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then
      echo "waycached at $base never became healthy" >&2
      cat "$WORK"/host*.log >&2
      exit 1
    fi
    sleep 0.2
  done
done

# --- cancellation: a huge mistyped grid must not block the host ---
JOB=$(curl -sf -X POST "$BASE1/api/v1/jobs" -d '{
  "DWays": [1, 2, 4, 8, 16],
  "DSizes": [8192, 16384, 32768, 65536],
  "TableSizes": [256, 512, 1024],
  "Insts": 4000000
}')
ID=$(echo "$JOB" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "no job id in: $JOB" >&2; exit 1; }

curl -sf -X POST "$BASE1/api/v1/jobs/$ID/cancel" >/dev/null
for i in $(seq 1 100); do
  STATE=$(curl -sf "$BASE1/api/v1/jobs/$ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
  [ "$STATE" = cancelled ] && break
  if [ "$i" = 100 ]; then
    echo "cancelled job $ID stuck in state $STATE" >&2
    exit 1
  fi
  sleep 0.2
done
echo "distributed smoke: job $ID reached terminal cancelled state"

# --- two-host coordinator run, byte-diffed against the golden fixture ---
"$WORK/sweepctl" -hosts "$BASE1,http://$ADDR2" -shards 2 \
  -benchmarks gcc,swim -dpolicies parallel,sequential,waypred-pc,seldm+waypred \
  -dways 2,4 -insts 30000 -progress=false \
  -out "$WORK/merged.json" 2>"$WORK/sweepctl.log" || {
  echo "sweepctl failed:" >&2
  cat "$WORK/sweepctl.log" >&2
  exit 1
}
cmp testdata/golden_sweep.json "$WORK/merged.json" || {
  echo "distributed merge differs from the single-host golden fixture" >&2
  exit 1
}

# An odd split across the same hosts must merge to the same bytes.
"$WORK/sweepctl" -hosts "$BASE1,http://$ADDR2" -shards 3 \
  -benchmarks gcc,swim -dpolicies parallel,sequential,waypred-pc,seldm+waypred \
  -dways 2,4 -insts 30000 -progress=false \
  -out "$WORK/merged3.json" 2>>"$WORK/sweepctl.log"
cmp testdata/golden_sweep.json "$WORK/merged3.json" || {
  echo "3-shard distributed merge differs from the golden fixture" >&2
  exit 1
}

# --- trace distribution: import, upload to ONE host, sweep everywhere ---
BASE2="http://$ADDR2"

# Convert a real-format fixture: render the gcc walker as a Valgrind
# lackey trace, then import it back through the lackey importer into a
# local content store (this also exercises the external-format round
# trip end to end over real binaries).
"$WORK/traceconv" -export -format lackey -bench gcc -n 50000 -o "$WORK/gcc.lackey" \
  2>>"$WORK/traceconv.log"
"$WORK/traceconv" -format lackey -in "$WORK/gcc.lackey" -bench gcc \
  -o "$WORK/gcc.wct" -store "$WORK/localstore" 2>>"$WORK/traceconv.log"
HASH=$(sha256sum "$WORK/gcc.wct" | cut -d' ' -f1)

# Upload to host 1 ONLY; host 2 must receive it from the coordinator.
curl -sf -X PUT --data-binary "@$WORK/gcc.wct" "$BASE1/api/v1/traces/$HASH" >/dev/null
curl -sf -I "$BASE2/api/v1/traces/$HASH" >/dev/null 2>&1 && {
  echo "host 2 has trace $HASH before the run — distribution would be untested" >&2
  exit 1
}

"$WORK/sweepctl" -hosts "$BASE1,$BASE2" -shards 2 \
  -benchmarks gcc -traces "gcc=trace://$HASH" \
  -dpolicies parallel,seldm+waypred -dways 2,4 -insts 30000 -progress=false \
  -out "$WORK/traced.json" 2>"$WORK/sweepctl_trace.log" || {
  echo "trace-distribution sweepctl failed:" >&2
  cat "$WORK/sweepctl_trace.log" >&2
  exit 1
}

# The coordinator must have pushed the trace to host 2 ...
curl -sf -I "$BASE2/api/v1/traces/$HASH" >/dev/null || {
  echo "trace $HASH was not pushed to host 2" >&2
  cat "$WORK/sweepctl_trace.log" >&2
  exit 1
}
# ... and every cell must have replayed, never fallen back to the walker.
if grep -q "replayed from walker" "$WORK/sweepctl_trace.log"; then
  echo "distributed trace run fell back to the walker:" >&2
  cat "$WORK/sweepctl_trace.log" >&2
  exit 1
fi

# Byte-identity against a local single-host run of the same reference
# (resolved from the import-time local store, not from any host).
"$WORK/sweep" -benchmarks gcc -traces "gcc=trace://$HASH" -tracestore "$WORK/localstore" \
  -dpolicies parallel,seldm+waypred -dways 2,4 -insts 30000 -progress=false \
  -out "$WORK/traced_local.json" 2>"$WORK/sweep_trace.log"
if grep -q "replayed from walker" "$WORK/sweep_trace.log"; then
  echo "local trace run fell back to the walker:" >&2
  cat "$WORK/sweep_trace.log" >&2
  exit 1
fi
cmp "$WORK/traced_local.json" "$WORK/traced.json" || {
  echo "distributed trace:// merge differs from the local single-host run" >&2
  exit 1
}

echo "distributed smoke: OK (cancel terminal, 2- and 3-shard merges byte-identical to golden, trace distributed to all hosts and byte-identical to local replay)"
