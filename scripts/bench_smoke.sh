#!/bin/sh
# Bench smoke: one iteration of every top-level benchmark with -benchmem,
# proving the harness runs end to end and the custom metrics (ed_*,
# accuracies) keep computing — plus a perf regression tripwire on the
# headline pipeline benchmark.
#
# BenchmarkTable5's single-iteration time is compared against the baseline
# committed in BENCH_PR8.json. The comparison only *fails* the build when
# this host's CPU model matches the one the baseline was recorded on
# (wall-clock baselines do not transfer across host classes); on any other
# host a regression prints a prominent warning and the step passes.
set -eu

cd "$(dirname "$0")/.."
out=$(mktemp)
trap 'rm -f "$out"' EXIT

go test -bench . -benchtime=1x -benchmem -run '^$' . | tee "$out"

t5=$(awk '/^BenchmarkTable5/ {print $3; exit}' "$out")
if [ -z "$t5" ]; then
    echo "bench smoke: BenchmarkTable5 missing from benchmark output" >&2
    exit 1
fi

base=$(awk -F'[:,]' '/^ *"ns_per_op_median"/ {gsub(/ /, "", $2); print $2; exit}' BENCH_PR8.json)
basecpu=$(awk -F'"' '/^ *"cpu"/ {print $4; exit}' BENCH_PR8.json)
hostcpu=$(awk -F: '/^model name/ {sub(/^[ \t]+/, "", $2); print $2; exit}' /proc/cpuinfo 2>/dev/null || true)

# Fail at >20% over baseline; the single-core baseline host itself shows
# ~20% wall-clock noise, so a tighter bound would flake.
if [ -z "$base" ]; then
    echo "bench smoke: no BenchmarkTable5 baseline in BENCH_PR8.json; skipping regression check"
    exit 0
fi
over=$(awk -v t="$t5" -v b="$base" 'BEGIN { print (t > b * 1.2) ? 1 : 0 }')
ratio=$(awk -v t="$t5" -v b="$base" 'BEGIN { printf "%.2f", t / b }')
if [ "$over" = 1 ]; then
    if [ "$hostcpu" = "$basecpu" ]; then
        echo "bench smoke: BenchmarkTable5 regressed: $t5 ns/op is ${ratio}x the committed baseline $base (host: $hostcpu)" >&2
        exit 1
    fi
    echo "bench smoke: WARNING: BenchmarkTable5 at $t5 ns/op is ${ratio}x the committed baseline $base," >&2
    echo "bench smoke: WARNING: but this host ('$hostcpu') is not the baseline host ('$basecpu') — not failing" >&2
else
    echo "bench smoke: BenchmarkTable5 $t5 ns/op, ${ratio}x of committed baseline $base — OK"
fi
