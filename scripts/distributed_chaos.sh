#!/usr/bin/env bash
# Distributed chaos test: the elastic coordinator (cmd/sweepctl) against
# real waycached hosts dying, freezing, and joining mid-run. Three hosts
# start a sweep from a watched hosts file; one second in, one host is
# SIGKILLed (dead — spans requeue to survivors), one is SIGSTOPped
# (frozen — it accepts TCP but never answers, so its span must be stolen
# or speculatively duplicated, never waited out), and a fourth host is
# appended to the hosts file (late join — it must pick up work). The
# merged JSON must still be byte-identical to a single-host cmd/sweep
# run of the same grid, generated in-script. A second leg repeats the
# exercise for CSV output with a host killed mid-run. Every phase is
# wrapped in `timeout`, so the whole script is bounded (~2 minutes worst
# case). On failure, host and coordinator logs are copied to
# $CHAOS_LOG_DIR if set (CI uploads them as artifacts). Run from the
# repo root.
set -euo pipefail

ADDR_A=127.0.0.1:18191
ADDR_B=127.0.0.1:18192
ADDR_C=127.0.0.1:18193
ADDR_D=127.0.0.1:18194
WORK=$(mktemp -d)
PID_A=""
PID_B=""
PID_C=""
PID_D=""

cleanup() {
  status=$?
  # SIGKILL reaps stopped (SIGSTOP'd) hosts too; no SIGCONT needed.
  kill -9 ${PID_A:-} ${PID_B:-} ${PID_C:-} ${PID_D:-} 2>/dev/null || true
  if [ "$status" -ne 0 ] && [ -n "${CHAOS_LOG_DIR:-}" ]; then
    mkdir -p "$CHAOS_LOG_DIR"
    cp "$WORK"/*.log "$CHAOS_LOG_DIR"/ 2>/dev/null || true
    cp "$WORK"/hosts.txt "$CHAOS_LOG_DIR"/ 2>/dev/null || true
  fi
  rm -rf "$WORK"
  exit "$status"
}
trap cleanup EXIT

# The chaos grid: 24 configs, big enough that faults injected one second
# in land mid-sweep on every host class.
GRID=(-benchmarks gcc,swim,li -dpolicies parallel,sequential,waypred-pc,seldm+waypred
  -dways 2,4 -insts 2000000)

go build -o "$WORK/waycached" ./cmd/waycached
go build -o "$WORK/sweepctl" ./cmd/sweepctl
go build -o "$WORK/sweep" ./cmd/sweep

# Golden fixtures: a single-host run of the same grid, both formats. The
# distributed contract is byte-identity against exactly these bytes, no
# matter which hosts die or join.
timeout 60 "$WORK/sweep" "${GRID[@]}" -progress=false -out "$WORK/golden.json" \
  2>"$WORK/golden.log"
timeout 60 "$WORK/sweep" "${GRID[@]}" -progress=false -format csv \
  -out "$WORK/golden.csv" 2>>"$WORK/golden.log"

start_host() { # start_host <addr> <logname>
  "$WORK/waycached" -addr "$1" -workers 1 >"$WORK/$2" 2>&1 &
  echo $!
}

PID_A=$(start_host "$ADDR_A" host_a.log)
PID_B=$(start_host "$ADDR_B" host_b.log)
PID_C=$(start_host "$ADDR_C" host_c.log)
PID_D=$(start_host "$ADDR_D" host_d.log)

for addr in "$ADDR_A" "$ADDR_B" "$ADDR_C" "$ADDR_D"; do
  for i in $(seq 1 50); do
    if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then
      echo "waycached at $addr never became healthy" >&2
      cat "$WORK"/host_*.log >&2
      exit 1
    fi
    sleep 0.2
  done
done

# --- leg 1: kill + freeze + late join, JSON byte-diff ------------------

# Host D is alive but deliberately absent from the initial hosts file;
# it only enters the fleet when the file is appended mid-run.
cat >"$WORK/hosts.txt" <<EOF
http://$ADDR_A
http://$ADDR_B
http://$ADDR_C
EOF

timeout 90 "$WORK/sweepctl" -hosts-file "$WORK/hosts.txt" -shards 6 \
  "${GRID[@]}" -progress=false -poll 100ms -timeout 3s -stall 2s \
  -retries 4 -seed 1 -out "$WORK/merged.json" 2>"$WORK/sweepctl.log" &
CTL=$!

# Let the first spans land, then misbehave: C dies outright, B freezes
# solid (the SIGSTOP'd process still accepts TCP connections — the
# kernel completes the handshake — but never sends a byte, the nastiest
# failure mode), and D joins via the watched hosts file.
sleep 1.2
kill -9 "$PID_C"
kill -STOP "$PID_B"
echo "http://$ADDR_D" >>"$WORK/hosts.txt"

if ! wait "$CTL"; then
  echo "chaos sweepctl run failed:" >&2
  cat "$WORK/sweepctl.log" >&2
  exit 1
fi

cmp "$WORK/golden.json" "$WORK/merged.json" || {
  echo "chaos merge differs from the single-host golden fixture" >&2
  cat "$WORK/sweepctl.log" >&2
  exit 1
}

# The frozen host's span must have been rescued by a steal or a
# speculative duplicate — not waited out to the request timeout ladder.
grep -qE ", stolen prefix|, speculative" "$WORK/sweepctl.log" || {
  echo "no steal or speculation in the chaos run — frozen host was waited out?" >&2
  cat "$WORK/sweepctl.log" >&2
  exit 1
}
# The late joiner must have entered the fleet through the hosts file.
grep -q "joined mid-run" "$WORK/sweepctl.log" || {
  echo "host D never joined mid-run" >&2
  cat "$WORK/sweepctl.log" >&2
  exit 1
}

echo "distributed chaos: leg 1 OK (kill + freeze + late join, JSON byte-identical)"

# --- leg 2: kill a host mid-run, CSV byte-diff -------------------------

kill -CONT "$PID_B" # thaw B; C stays dead, so the fleet is A, B, D

timeout 90 "$WORK/sweepctl" -hosts "http://$ADDR_A,http://$ADDR_B,http://$ADDR_D" \
  -shards 6 "${GRID[@]}" -progress=false -poll 100ms -timeout 3s -stall 2s \
  -retries 4 -seed 2 -format csv -out "$WORK/merged.csv" 2>"$WORK/sweepctl_csv.log" &
CTL=$!

sleep 1.0
kill -9 "$PID_D"

if ! wait "$CTL"; then
  echo "chaos CSV sweepctl run failed:" >&2
  cat "$WORK/sweepctl_csv.log" >&2
  exit 1
fi

cmp "$WORK/golden.csv" "$WORK/merged.csv" || {
  echo "chaos CSV merge differs from the single-host golden fixture" >&2
  cat "$WORK/sweepctl_csv.log" >&2
  exit 1
}

echo "distributed chaos: OK (merged JSON and CSV byte-identical to single-host goldens under host kill, freeze, and late join)"
