#!/usr/bin/env bash
# Local mirror of CI's lint job: gofmt, the wclint analyzer suite as a
# vet tool, the escape-analysis cross-check of //wclint:hotpath
# annotations, and staticcheck when it is installed. CI installs the
# pinned staticcheck first and then runs exactly this script, so a
# clean local run means a clean lint job (docs/STATIC_ANALYSIS.md has
# the contract details).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:"
  echo "$unformatted"
  exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== wclint (vet tool) =="
go build -o "$tmp/wclint" ./cmd/wclint
# -vettool replaces vet's standard analyzers, so run both suites.
go vet ./...
go vet -vettool="$tmp/wclint" ./...

echo "== wclint escape (compiler cross-check) =="
"$tmp/wclint" escape ./internal/access ./internal/cache ./internal/pipeline ./internal/trace

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./...
else
  echo "staticcheck not installed; skipping (CI runs it pinned)"
fi

echo "lint OK"
