#!/bin/sh
# Determinism gate: simulation outputs are contractually byte-stable.
#
# Runs a small sweep grid twice through both trace sources — the live
# workload walker and a fresh .wct capture replay — and byte-diffs every
# output against the checked-in golden fixtures (testdata/golden_sweep.json
# / .csv). Any drift means a change to simulation behaviour, which a perf
# refactor must not cause; regenerate the fixtures (GOLDEN=regen) only for
# a PR that intentionally changes the model.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/sweep" ./cmd/sweep
go build -o "$tmp/tracegen" ./cmd/tracegen

BENCHES="gcc,swim"
POLICIES="parallel,sequential,waypred-pc,seldm+waypred"
INSTS=30000

# stderr stays visible so a failing sweep run leaves a diagnostic in CI.
run_sweep() { # $1=format $2=out $3... extra flags
    fmt=$1; outf=$2; shift 2
    "$tmp/sweep" -benchmarks "$BENCHES" -dpolicies "$POLICIES" -dways 2,4 \
        -insts "$INSTS" -progress=false -format "$fmt" -out "$outf" "$@"
}

# Walker-driven grid, twice (run-to-run determinism).
run_sweep json "$tmp/walk1.json"
run_sweep json "$tmp/walk2.json"
run_sweep csv "$tmp/walk1.csv"
cmp "$tmp/walk1.json" "$tmp/walk2.json" ||
    { echo "determinism gate: walker sweep differs run to run" >&2; exit 1; }

# Trace-replay grid, twice, from a fresh capture of the same benchmarks.
mkdir "$tmp/traces"
for b in $(echo "$BENCHES" | tr , ' '); do
    "$tmp/tracegen" -capture -bench "$b" -n "$INSTS" -o "$tmp/traces/$b.wct" >/dev/null
done
run_sweep json "$tmp/replay1.json" -trace "$tmp/traces"
run_sweep json "$tmp/replay2.json" -trace "$tmp/traces"
run_sweep csv "$tmp/replay1.csv" -trace "$tmp/traces"
cmp "$tmp/replay1.json" "$tmp/replay2.json" ||
    { echo "determinism gate: replay sweep differs run to run" >&2; exit 1; }
cmp "$tmp/walk1.json" "$tmp/replay1.json" ||
    { echo "determinism gate: replay sweep differs from walker sweep" >&2; exit 1; }
cmp "$tmp/walk1.csv" "$tmp/replay1.csv" ||
    { echo "determinism gate: replay CSV differs from walker CSV" >&2; exit 1; }

# Parallel-worker legs: a -workers 4 sweep must produce byte-identical
# output to the serial one, in both source modes — results are ordered by
# grid position, never by completion. (walk1 is byte-compared against the
# golden fixtures below, so these legs are transitively golden-checked.)
run_sweep json "$tmp/walk_w4.json" -workers 4
cmp "$tmp/walk1.json" "$tmp/walk_w4.json" ||
    { echo "determinism gate: -workers 4 walker sweep differs from serial" >&2; exit 1; }
run_sweep json "$tmp/replay_w4.json" -workers 4 -trace "$tmp/traces"
cmp "$tmp/walk1.json" "$tmp/replay_w4.json" ||
    { echo "determinism gate: -workers 4 replay sweep differs from serial" >&2; exit 1; }

if [ "${GOLDEN:-}" = "regen" ]; then
    cp "$tmp/walk1.json" testdata/golden_sweep.json
    cp "$tmp/walk1.csv" testdata/golden_sweep.csv
    echo "determinism gate: regenerated golden fixtures"
    exit 0
fi

cmp testdata/golden_sweep.json "$tmp/walk1.json" ||
    { echo "determinism gate: sweep JSON drifted from golden fixture" >&2; exit 1; }
cmp testdata/golden_sweep.csv "$tmp/walk1.csv" ||
    { echo "determinism gate: sweep CSV drifted from golden fixture" >&2; exit 1; }

echo "determinism gate: OK (walker == replay == golden, serial and 4 workers, twice)"
