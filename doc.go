// Package waycache is a reproduction of "Reducing Set-Associative Cache
// Energy via Way-Prediction and Selective Direct-Mapping" (Powell,
// Agarwal, Vijaykumar, Falsafi, Roy — MICRO-34, 2001).
//
// The library lives under internal/: core (simulator API), access (the
// paper's cache access policies), cache, predict, branch, energy, wattch,
// pipeline, program, workload, experiments. The experiment harness in
// internal/experiments regenerates every table and figure of the paper's
// evaluation; cmd/experiments exposes it on the command line, and the
// benchmarks in bench_test.go wrap each experiment as a testing.B target.
//
// See README.md for a tour and DESIGN.md for the system inventory and the
// substitutions made for the paper's proprietary dependencies.
package waycache
