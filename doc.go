// Package waycache is a reproduction of "Reducing Set-Associative Cache
// Energy via Way-Prediction and Selective Direct-Mapping" (Powell,
// Agarwal, Vijaykumar, Falsafi, Roy — MICRO-34, 2001).
//
// The library lives under internal/: core (simulator API), access (the
// paper's cache access policies), cache, predict, branch, energy, wattch,
// pipeline, program, workload, sweep, experiments. The experiment harness
// in internal/experiments regenerates every table and figure of the
// paper's evaluation; cmd/experiments exposes it on the command line, and
// the benchmarks in bench_test.go wrap each experiment as a testing.B
// target.
//
// internal/sweep is the design-space sweep engine: it expands declarative
// parameter grids (benchmarks x policies x geometries x latencies) into
// jobs, executes them on a bounded context-cancellable worker pool, and
// memoizes results by canonical configuration so shared baselines are
// simulated once across experiments. Sweep output (JSON or CSV) is ordered
// by grid position and byte-identical for any worker count. All
// experiments submit their simulations through the engine; cmd/sweep runs
// arbitrary grids far beyond the paper's figures.
//
// The memoization behind the engine is pluggable (sweep.Backend): the
// in-memory tier optionally fronts internal/resultdb, a crash-safe
// append-only on-disk store of canonically-encoded results
// (core.EncodeResult) keyed by core.Config.Key, so repeated runs across
// processes recall finished configurations instead of re-simulating them
// (the -store flag of cachesim, sweep and experiments). internal/server
// and cmd/waycached expose the same engine and store as a long-lived HTTP
// service — submit grids, poll job progress, query and aggregate the
// accumulated corpus — documented in docs/HTTP_API.md.
//
// internal/trace additionally defines the capture/replay substrate: a
// versioned, varint-delta-compressed on-disk format for dynamic
// instruction streams (trace.Writer/trace.Reader) behind the same
// trace.Source interface the live workload walkers implement, so
// cachesim, sweeps and experiments run identically — byte for byte —
// from a recorded file or a live generator. cmd/tracegen -capture records
// traces; cachesim -trace and sweep -trace replay them.
//
// See docs/ARCHITECTURE.md for the package map and data-flow diagram, and
// docs/TRACE_FORMAT.md for the byte-level trace file specification.
package waycache
