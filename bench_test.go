// Benchmark harness: one testing.B target per table and figure in the
// paper's evaluation. Each benchmark regenerates its table/figure from
// full simulations and reports the headline quantities as custom metrics,
// so `go test -bench=.` reproduces the paper's results end to end:
//
//	go test -bench=BenchmarkFigure6 -benchmem
//	go test -bench=. -benchmem            # everything
//
// Set -v to also print the full tables (the same rows the paper reports).
package waycache_test

import (
	"context"
	"os"
	"runtime"
	"testing"

	"waycache/internal/access"
	"waycache/internal/experiments"
	"waycache/internal/sweep"
)

// benchOpts keeps benchmark runs substantial but bounded: the full suite
// at 150k instructions per configuration.
func benchOpts() experiments.Options {
	return experiments.Options{Insts: 150_000}
}

// runExperiment executes the named experiment b.N times, printing the
// report once when verbose and publishing summary metrics.
func runExperiment(b *testing.B, name string, metrics []string) {
	b.Helper()
	fn, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = fn(benchOpts())
	}
	if testing.Verbose() {
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if v, ok := rep.Summary[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// BenchmarkTable3 regenerates the cache energy component table
// (parallel/one-way/write/tag/prediction-table relative energies).
func BenchmarkTable3(b *testing.B) {
	runExperiment(b, "table3", []string{"oneWay", "write", "tag"})
}

// BenchmarkTable4 regenerates the direct-mapped vs 4-way miss-rate table.
func BenchmarkTable4(b *testing.B) {
	runExperiment(b, "table4", []string{"dm_gcc", "sa_gcc", "dm_swim", "sa_swim"})
}

// BenchmarkTable5 regenerates the d-cache technique summary (average
// energy-delay savings and performance loss per design option).
func BenchmarkTable5(b *testing.B) {
	runExperiment(b, "table5", []string{
		"ed_sequential", "ed_waypred-pc", "ed_seldm+waypred", "ed_seldm+sequential",
	})
}

// BenchmarkFigure4 regenerates the sequential-access energy-delay and
// performance-degradation series.
func BenchmarkFigure4(b *testing.B) {
	runExperiment(b, "fig4", []string{"avgRelED", "avgPerfLoss", "maxPerfLoss"})
}

// BenchmarkFigure5 regenerates the PC- vs XOR-based way-prediction
// comparison (energy-delay, performance, accuracy).
func BenchmarkFigure5(b *testing.B) {
	runExperiment(b, "fig5", []string{"pcAcc", "xorAcc", "pcRelED", "xorRelED"})
}

// BenchmarkFigure6 regenerates the selective-DM scheme comparison and the
// access breakdown.
func BenchmarkFigure6(b *testing.B) {
	runExperiment(b, "fig6", []string{"sdmParED", "sdmWpED", "sdmSeqED", "dmFrac"})
}

// BenchmarkFigure7 regenerates the 16K-vs-32K selective-DM comparison.
func BenchmarkFigure7(b *testing.B) {
	runExperiment(b, "fig7", []string{"ed16", "ed32"})
}

// BenchmarkFigure8 regenerates the associativity sweep (2/4/8-way).
func BenchmarkFigure8(b *testing.B) {
	runExperiment(b, "fig8", []string{"ed2", "ed4", "ed8"})
}

// BenchmarkFigure9 regenerates the 2-cycle-cache comparison.
func BenchmarkFigure9(b *testing.B) {
	runExperiment(b, "fig9", []string{"sdmWpED", "sdmSeqED", "seqED", "seqPerf"})
}

// BenchmarkFigure10 regenerates the i-cache way-prediction sweep and
// prediction-source breakdown.
func BenchmarkFigure10(b *testing.B) {
	runExperiment(b, "fig10", []string{"ed2", "ed4", "ed8", "avgAccuracy"})
}

// BenchmarkFigure11 regenerates the overall processor energy figure,
// including the perfect-way-prediction bound.
func BenchmarkFigure11(b *testing.B) {
	runExperiment(b, "fig11", []string{"relEnergy", "relED", "perfLoss", "perfectED"})
}

// BenchmarkAblationTableSize sweeps prediction-table sizes (512/1024/2048),
// regenerating the paper's insensitivity claim.
func BenchmarkAblationTableSize(b *testing.B) {
	runExperiment(b, "ablation-tables", []string{
		"waypred-pc_1024", "waypred-pc_2048", "seldm+waypred_1024", "seldm+waypred_2048",
	})
}

// BenchmarkAblationVictimList sweeps victim-list sizes (4/16/64 entries).
func BenchmarkAblationVictimList(b *testing.B) {
	runExperiment(b, "ablation-victim", []string{"ed_4", "ed_16", "ed_64"})
}

// BenchmarkRelatedWork compares against the paper's Section 5 baselines:
// selective cache ways (Albonesi) and MRU way-prediction (Inoue et al.).
func BenchmarkRelatedWork(b *testing.B) {
	runExperiment(b, "related", []string{"selWaysED", "mruED", "sdmED"})
}

// sweepBenchGrid is the small design-space grid the sweep throughput
// benchmarks run: 3 benchmarks x 3 d-policies x 2 associativities.
func sweepBenchGrid() sweep.Grid {
	return sweep.Grid{
		Benchmarks: []string{"gcc", "swim", "fpppp"},
		DPolicies: []access.DPolicy{
			access.DParallel, access.DWayPredPC, access.DSelDMWayPred,
		},
		DWays: []int{2, 4},
		Insts: 60_000,
	}
}

// runSweepBench sweeps the grid with the given worker count on a fresh
// engine per iteration (no carried-over memoization), reporting sweep
// throughput in configs/sec so the perf trajectory can track serial vs
// parallel engine speed.
func runSweepBench(b *testing.B, workers int) {
	b.Helper()
	g := sweepBenchGrid()
	total := g.Size()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sweep.New(sweep.Options{Workers: workers})
		if _, err := eng.Run(context.Background(), g); err != nil {
			b.Fatal(err)
		}
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(total*b.N)/s, "configs/s")
	}
}

// BenchmarkSweepSerial sweeps the grid with a single worker.
func BenchmarkSweepSerial(b *testing.B) { runSweepBench(b, 1) }

// BenchmarkSweepParallel sweeps the same grid with one worker per core;
// the configs/s ratio against BenchmarkSweepSerial is the engine speedup.
func BenchmarkSweepParallel(b *testing.B) { runSweepBench(b, runtime.NumCPU()) }
