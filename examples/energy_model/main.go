// Energy model explorer: inspect the mini-CACTI cost model across cache
// geometries — the physics behind the paper's Table 3 and the scaling
// trends of Figures 7 and 8.
//
//	go run ./examples/energy_model
package main

import (
	"fmt"
	"log"
	"os"

	"waycache/internal/energy"
	"waycache/internal/stats"
)

func main() {
	model := energy.DefaultCacti()

	t := stats.NewTable("Per-access energies, normalized to each geometry's own parallel read",
		"geometry", "tag", "1-way read", "mispredicted", "write", "max saving")
	for _, g := range []energy.Geometry{
		{SizeBytes: 16 << 10, Ways: 2, BlockBytes: 32},
		{SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32},
		{SizeBytes: 16 << 10, Ways: 8, BlockBytes: 32},
		{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 32},
		{SizeBytes: 64 << 10, Ways: 4, BlockBytes: 64},
	} {
		costs, err := model.CostsFor(g)
		if err != nil {
			log.Fatal(err)
		}
		t.Add(
			fmt.Sprintf("%dK %d-way %dB", g.SizeBytes>>10, g.Ways, g.BlockBytes),
			stats.F3(costs.Tag),
			stats.F3(costs.OneWayRead()),
			stats.F3(costs.MispredictedRead()),
			stats.F3(costs.Write()),
			stats.Pct(1-costs.OneWayRead()),
		)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	ref := model.MustCostsFor(energy.ReferenceGeometry)
	paper := energy.PaperCosts()
	fmt.Println("Reference geometry (16K 4-way 32B) vs the paper's Table 3:")
	fmt.Printf("  one-way read  %.3f (paper %.3f)\n", ref.OneWayRead(), paper.OneWayRead())
	fmt.Printf("  write         %.3f (paper %.3f)\n", ref.Write(), paper.Write())
	fmt.Printf("  tag array     %.3f (paper %.3f)\n", ref.Tag, paper.Tag)
	fmt.Printf("  pred table    %.4f (paper %.4f)\n\n", ref.Table, paper.Table)
	fmt.Println("The 'max saving' column is the ceiling any way-pinpointing technique")
	fmt.Println("can reach on reads: it grows with associativity (Figure 8's trend) and")
	fmt.Println("is nearly flat in cache size (Figure 7's).")
}
