// Quickstart: simulate one benchmark with the paper's best d-cache
// technique (selective direct-mapping + way-prediction) and i-cache
// way-prediction, and compare against the conventional parallel-access
// baseline.
//
//	go run ./examples/quickstart
//
// core.Run is the single-configuration entry point used here. For
// anything bigger, go through the parallel sweep engine instead of
// looping over core.Run yourself: internal/sweep expands declarative
// grids onto a worker pool, memoizes shared baselines, and emits
// deterministic JSON/CSV (cmd/sweep is its CLI). Repeated runs can also
// skip workload generation entirely by replaying captured traces:
// record once with `tracegen -bench gcc -capture`, then pass the file
// via core.Config.Trace, `cachesim -trace`, or a trace directory via
// sweep.Options.TraceDir / `sweep -trace` — results are byte-identical
// to walking the generator. See docs/ARCHITECTURE.md for the package
// map and docs/TRACE_FORMAT.md for the capture format.
package main

import (
	"fmt"
	"log"

	"waycache/internal/access"
	"waycache/internal/core"
)

func main() {
	const bench = "gcc"
	const insts = 500_000

	// Baseline: an aggressive 1-cycle, 4-way, parallel-access 16 KB L1
	// pair — the configuration every figure in the paper normalizes to.
	base, err := core.Run(core.Config{Benchmark: bench, Insts: insts})
	if err != nil {
		log.Fatal(err)
	}

	// Technique: selective-DM + way-prediction d-cache, way-predicted
	// i-cache (BTB/RAS/SAWP).
	tech, err := core.Run(core.Config{
		Benchmark: bench,
		Insts:     insts,
		DPolicy:   access.DSelDMWayPred,
		IPolicy:   access.IWayPred,
	})
	if err != nil {
		log.Fatal(err)
	}

	c := core.Compare(base, tech)
	fmt.Printf("benchmark: %s (%d instructions)\n\n", bench, insts)
	fmt.Printf("baseline:  %d cycles (IPC %.2f), d-miss %.1f%%\n",
		base.Cycles(), base.Pipeline.IPC(), 100*base.DMissRate())
	fmt.Printf("technique: %d cycles (IPC %.2f)\n\n", tech.Cycles(), tech.Pipeline.IPC())

	fmt.Printf("L1 d-cache energy-delay: %.3f  (%.1f%% savings)\n", c.RelDCacheED, 100*(1-c.RelDCacheED))
	fmt.Printf("L1 i-cache energy-delay: %.3f  (%.1f%% savings)\n", c.RelICacheED, 100*(1-c.RelICacheED))
	fmt.Printf("processor  energy-delay: %.3f  (%.1f%% savings)\n", c.RelProcED, 100*(1-c.RelProcED))
	fmt.Printf("performance degradation: %.2f%%\n\n", 100*c.PerfLoss)

	perfect := core.PerfectWayPrediction(base)
	fmt.Printf("perfect way-prediction bound: %.3f processor energy-delay\n", perfect.RelProcED)
}
