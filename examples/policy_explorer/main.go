// Policy explorer: sweep every d-cache access policy the paper evaluates
// across a chosen benchmark, reproducing the trade-off space of Table 5 —
// energy-delay savings vs performance loss vs prediction accuracy.
//
//	go run ./examples/policy_explorer [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"waycache/internal/access"
	"waycache/internal/core"
	"waycache/internal/stats"
)

func main() {
	bench := "vortex"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	const insts = 500_000

	base, err := core.Run(core.Config{Benchmark: bench, Insts: insts})
	if err != nil {
		log.Fatal(err)
	}

	policies := []access.DPolicy{
		access.DParallel, access.DSequential,
		access.DWayPredPC, access.DWayPredXOR,
		access.DSelDMParallel, access.DSelDMWayPred, access.DSelDMSequential,
	}

	t := stats.NewTable(fmt.Sprintf("d-cache design space, %s (%d insts)", bench, insts),
		"policy", "rel E-D", "E-D savings", "perf loss", "first-probe accuracy", "d-miss")
	for _, pol := range policies {
		res, err := core.Run(core.Config{Benchmark: bench, Insts: insts, DPolicy: pol})
		if err != nil {
			log.Fatal(err)
		}
		c := core.Compare(base, res)
		t.Add(pol.String(),
			stats.F3(c.RelDCacheED),
			stats.Pct(1-c.RelDCacheED),
			stats.Pct(c.PerfLoss),
			stats.Pct(res.WayPredAccuracy()),
			stats.Pct(res.DMissRate()))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Reading the table:")
	fmt.Println("  - sequential saves the most raw energy but pays the most cycles")
	fmt.Println("  - selective-DM + way-prediction/sequential reach sequential-class")
	fmt.Println("    savings at a fraction of the performance cost (the paper's result)")
}
