// Custom workload: define your own synthetic benchmark — code shape,
// branch behaviour and data-reference streams — and evaluate cache access
// policies on it through the public simulator API.
//
// The example models a small in-memory key-value store: hash-bucket
// lookups (pointer chases), a hot metadata block, an append log
// (sequential stores), and two tables that collide in the direct-mapped
// position — exactly the kind of access selective-DM must detect.
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"
	"os"

	"waycache/internal/access"
	"waycache/internal/core"
	"waycache/internal/program"
	"waycache/internal/stats"
	"waycache/internal/workload"
)

func main() {
	heap := workload.HeapBase
	g := workload.GlobalBase

	kv := workload.Profile{
		Name: "kvstore",
		Seed: 0xC0FFEE,

		Funcs: 24, BlocksPerFunc: [2]int{5, 10}, InstsPerBlock: [2]int{5, 12},
		LoadFrac: 0.30, StoreFrac: 0.12,
		LoopFrac: 0.25, LoopTrip: 12,
		CallFrac: 0.10, BiasedFrac: 0.72, RandomFrac: 0.06, TakenBias: 0.9, FallFrac: 0.1,
		OffsetMax: 24,

		Streams: []program.Stream{
			// Hash-bucket chains: pointer chases over 64 KB of buckets.
			{Name: "buckets", Kind: program.StreamChase, Base: heap, Length: 64 << 10, AdvanceEvery: 3, Align: 8},
			// Hot metadata: a few cache blocks touched constantly.
			{Name: "meta", Kind: program.StreamGlobal, Base: g},
			// Append log: streaming sequential stores.
			{Name: "log", Kind: program.StreamSeq, Base: heap + 4<<20, Length: 1 << 20, Stride: 8, AdvanceEvery: 2, Align: 8},
			// Two index tables exactly 16 KB apart: they fight over one
			// direct-mapped slot but coexist in a 4-way set.
			{Name: "indexes", Kind: program.StreamCyclic, Base: g + 0x1C00, NWays: 2, CycleStride: 16 << 10, AdvanceEvery: 2},
		},
		StreamWeights: []float64{0.18, 0.42, 0.25, 0.15},
	}

	const insts = 500_000
	base, err := core.Run(core.Config{Benchmark: kv.Name, Source: kv.NewWalker(), Insts: insts})
	if err != nil {
		log.Fatal(err)
	}

	t := stats.NewTable("kvstore: d-cache policies (relative to parallel)",
		"policy", "rel E-D", "perf loss", "DM fraction", "mispredicted")
	for _, pol := range []access.DPolicy{
		access.DSequential, access.DWayPredPC, access.DSelDMWayPred, access.DSelDMSequential,
	} {
		res, err := core.Run(core.Config{Benchmark: kv.Name, Source: kv.NewWalker(), Insts: insts, DPolicy: pol})
		if err != nil {
			log.Fatal(err)
		}
		c := core.Compare(base, res)
		loads := float64(res.DStats.Loads)
		t.Add(pol.String(), stats.F3(c.RelDCacheED), stats.Pct(c.PerfLoss),
			stats.Pct(float64(res.DStats.ByClass[access.ClassDM])/loads),
			stats.Pct(float64(res.DStats.ByClass[access.ClassMispred])/loads))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("The cyclic 'indexes' stream ping-pongs in a direct-mapped cache; watch")
	fmt.Println("selective-DM move it to set-associative placement via the victim list,")
	fmt.Println("keeping the DM fraction high without paying conflict misses.")
}
