// I-cache study: run the paper's i-cache way-prediction (BTB and RAS way
// fields plus the Sequential Address Way-Predictor) across the whole
// benchmark suite, showing where each prediction comes from and what it
// saves — the data behind Figure 10.
//
//	go run ./examples/icache_study
package main

import (
	"fmt"
	"log"
	"os"

	"waycache/internal/access"
	"waycache/internal/core"
	"waycache/internal/stats"
	"waycache/internal/workload"
)

func main() {
	const insts = 400_000

	t := stats.NewTable("i-cache way-prediction across the suite (16K 4-way)",
		"benchmark", "SAWP correct", "BTB/RAS correct", "no prediction",
		"mispredicted", "miss", "rel E-D", "perf loss")

	for _, bench := range workload.Names() {
		base, err := core.Run(core.Config{Benchmark: bench, Insts: insts})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(core.Config{Benchmark: bench, Insts: insts, IPolicy: access.IWayPred})
		if err != nil {
			log.Fatal(err)
		}
		c := core.Compare(base, res)
		fetches := float64(res.IStats.Fetches)
		frac := func(cl access.IClass) string {
			return stats.Pct(float64(res.IStats.ByClass[cl]) / fetches)
		}
		t.Add(bench,
			frac(access.IClassTableCorrect), frac(access.IClassBTBCorrect),
			frac(access.IClassNoPred), frac(access.IClassMispred), frac(access.IClassMiss),
			stats.F3(c.RelICacheED), stats.Pct(c.PerfLoss))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Expected shape (paper Fig. 10): floating-point codes with long basic")
	fmt.Println("blocks lean on the SAWP; branchy integer codes lean on the BTB/RAS;")
	fmt.Println("fpppp's oversized code footprint thrashes the i-cache and drags its")
	fmt.Println("accuracy below everyone else's.")
}
