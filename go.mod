module waycache

go 1.24
