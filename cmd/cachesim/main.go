// Command cachesim runs a single simulator configuration and prints its
// timing, cache and energy statistics.
//
// Usage:
//
//	cachesim -bench gcc -dpolicy seldm+waypred -ipolicy waypred -insts 1000000
//	cachesim -bench swim -dpolicy sequential -dlatency 2
//	cachesim -bench fpppp -dways 8
//	cachesim -trace traces/gcc.wct -dpolicy seldm+waypred
//	cachesim -trace trace://<sha256> -tracestore /var/waycache/traces
//	cachesim -bench gcc -dpolicy seldm+waypred -store results/
//
// With -store naming a directory, the run is memoized in the on-disk
// result store shared with sweep/experiments/waycached: a configuration
// simulated by any of them (including a previous cachesim call) is
// recalled from disk instead of re-simulated, and fresh runs extend the
// store.
//
// With -trace the simulator replays a captured trace file (written by
// tracegen -capture) instead of walking the named benchmark's generator;
// the benchmark name is taken from the trace header unless -bench is given
// explicitly, in which case the two must agree. -trace also accepts a
// content-addressed trace://<sha256> reference when -tracestore names a
// local store (see cmd/traceconv); the bytes are verified against the
// hash on decode.
package main

import (
	"flag"
	"fmt"
	"os"

	"waycache/internal/access"
	"waycache/internal/core"
	"waycache/internal/sweep"
	"waycache/internal/tracestore"
)

var dPolicies = map[string]access.DPolicy{
	"parallel":         access.DParallel,
	"sequential":       access.DSequential,
	"waypred-pc":       access.DWayPredPC,
	"waypred-xor":      access.DWayPredXOR,
	"seldm+parallel":   access.DSelDMParallel,
	"seldm+waypred":    access.DSelDMWayPred,
	"seldm+sequential": access.DSelDMSequential,
	"waypred-mru":      access.DWayPredMRU,
}

var iPolicies = map[string]access.IPolicy{
	"parallel": access.IParallel,
	"waypred":  access.IWayPred,
}

func main() {
	bench := flag.String("bench", "gcc", "benchmark name (see workload suite)")
	tracePath := flag.String("trace", "", "replay a captured trace file instead of walking -bench's generator")
	dpol := flag.String("dpolicy", "parallel", "d-cache policy: parallel|sequential|waypred-pc|waypred-xor|seldm+parallel|seldm+waypred|seldm+sequential")
	ipol := flag.String("ipolicy", "parallel", "i-cache policy: parallel|waypred")
	insts := flag.Int64("insts", 1_000_000, "instructions to simulate")
	dsize := flag.Int("dsize", 16<<10, "d-cache size in bytes")
	dways := flag.Int("dways", 4, "d-cache associativity")
	iways := flag.Int("iways", 4, "i-cache associativity")
	dlat := flag.Int("dlatency", 1, "base d-cache hit latency (cycles)")
	baseline := flag.Bool("baseline", false, "also run the parallel baseline and print relative metrics")
	storeDir := flag.String("store", "", "directory of the on-disk result store; known configurations are recalled, fresh ones stored")
	traceStoreDir := flag.String("tracestore", "", "content-addressed trace store directory; lets -trace name a trace://<sha256> reference")
	flag.Parse()

	dp, ok := dPolicies[*dpol]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -dpolicy %q\n", *dpol)
		os.Exit(2)
	}
	ip, ok := iPolicies[*ipol]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -ipolicy %q\n", *ipol)
		os.Exit(2)
	}

	cfg := core.Config{
		Benchmark: *bench, Trace: *tracePath, Insts: *insts,
		DPolicy: dp, IPolicy: ip,
		DSize: *dsize, DWays: *dways, IWays: *iways, DLatency: *dlat,
	}
	if *traceStoreDir != "" {
		ts, err := tracestore.Open(*traceStoreDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.TraceStore = ts
	}
	if *tracePath != "" {
		// With -trace, the benchmark name comes from the trace header;
		// only an explicit -bench pins (and cross-checks) it.
		benchSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "bench" {
				benchSet = true
			}
		})
		if !benchSet {
			cfg.Benchmark = ""
		}
	}
	// run simulates through the store when -store is set (recalling known
	// configurations from disk), or directly otherwise.
	run := core.Run
	if *storeDir != "" {
		store, db, err := sweep.OpenDiskStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if cerr := db.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "cachesim: closing store:", cerr)
			}
			if berr := store.BackendErr(); berr != nil {
				fmt.Fprintln(os.Stderr, "cachesim: warning: result store degraded:", berr)
			}
		}()
		run = store.Result
		defer func() {
			fmt.Fprintf(os.Stderr, "[store: %d simulated, %d recalled, %d results in store]\n",
				store.Misses(), store.Hits(), store.Len())
		}()
	}

	res, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ps := res.Pipeline
	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("d-policy         %s   i-policy %s\n", dp, ip)
	fmt.Printf("instructions     %d\n", ps.Committed)
	fmt.Printf("cycles           %d (IPC %.2f)\n", ps.Cycles, ps.IPC())
	fmt.Printf("branches         %d (mispredict %.1f%%)\n", ps.Branches,
		100*float64(ps.BranchMispred)/float64(max64(1, ps.Branches)))
	fmt.Printf("d-cache          miss %.2f%%  loads %d stores %d\n",
		100*res.DMissRate(), res.DStats.Loads, res.DStats.Stores)
	fmt.Printf("d-way accuracy   %.1f%%\n", 100*res.WayPredAccuracy())
	fmt.Printf("i-cache          miss %.2f%%  fetches %d  way accuracy %.1f%%\n",
		100*res.IL1.MissRate(), res.IStats.Fetches, 100*res.IWayAccuracy())
	fmt.Printf("L1d energy       %.1f (normalized units)\n", res.DCacheEnergy())
	fmt.Printf("L1i energy       %.1f\n", res.ICacheEnergy())
	fmt.Printf("processor energy %.1f (L1 share %.1f%%)\n", res.ProcessorEnergy(), 100*res.Power.L1Share())

	if *baseline {
		bcfg := cfg
		bcfg.DPolicy, bcfg.IPolicy = access.DParallel, access.IParallel
		base, err := run(bcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		c := core.Compare(base, res)
		fmt.Printf("\nrelative to parallel baseline:\n")
		fmt.Printf("  d-cache E-D    %.3f (%.1f%% savings)\n", c.RelDCacheED, 100*(1-c.RelDCacheED))
		fmt.Printf("  i-cache E-D    %.3f\n", c.RelICacheED)
		fmt.Printf("  processor E-D  %.3f\n", c.RelProcED)
		fmt.Printf("  perf loss      %.2f%%\n", 100*c.PerfLoss)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
