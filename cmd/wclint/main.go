// Command wclint statically enforces waycache's load-bearing contracts:
// byte-identical determinism, the zero-alloc hot path, retry hygiene on
// coordinator HTTP, and the declared lock order. It runs three ways:
//
//	go vet -vettool=$(command -v wclint) ./...   the CI gate (fast: export data)
//	wclint ./...                                 standalone, typechecks from source
//	wclint escape [./...]                        -gcflags=-m cross-check of //wclint:hotpath
//
// See docs/STATIC_ANALYSIS.md for the contracts, annotations
// (//wclint:hotpath, //wclint:lockrank N, //wclint:retry-core,
// //wclint:deterministic) and escape hatches (//wclint:<kind>-ok <reason>).
package main

import (
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"strings"

	"waycache/internal/lint"
	"waycache/internal/lint/analysis"
)

func main() {
	args := os.Args[1:]
	if analysis.IsVetInvocation(args) {
		os.Exit(analysis.VetMain(args, lint.Analyzers()))
	}
	if len(args) > 0 && args[0] == "escape" {
		os.Exit(runEscape(args[1:]))
	}
	os.Exit(runStandalone(args))
}

func runEscape(patterns []string) int {
	findings, err := lint.EscapeCheck(patterns, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wclint escape: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "wclint escape: %d hotpath escape(s)\n", len(findings))
		return 2
	}
	return 0
}

// runStandalone loads each matched package from source and applies the
// suite. Slower than the vet path (dependencies typecheck from source)
// but self-contained: no export data, no build step.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := listPackages(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wclint: %v\n", err)
		return 1
	}
	fset := token.NewFileSet()
	exit := 0
	for _, p := range pkgs {
		u, err := analysis.LoadDir(fset, p.dir, p.path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wclint: %v\n", err)
			exit = 1
			continue
		}
		findings, err := analysis.RunAnalyzers(u, lint.Analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "wclint: %v\n", err)
			exit = 1
			continue
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
			exit = 2
		}
	}
	return exit
}

type pkgRef struct{ dir, path string }

func listPackages(patterns []string) ([]pkgRef, error) {
	args := append([]string{"list", "-f", "{{.Dir}}\t{{.ImportPath}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var pkgs []pkgRef
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		dir, path, ok := strings.Cut(line, "\t")
		if ok {
			pkgs = append(pkgs, pkgRef{dir: dir, path: path})
		}
	}
	return pkgs, nil
}
