// Command sweep runs arbitrary design-space sweeps over the simulator —
// grids far beyond the fixed ones the paper plots — on a parallel worker
// pool with memoized, deterministically ordered results.
//
// Usage:
//
//	sweep -dways 1,2,4,8,16 -dpolicies all -benchmarks all -workers 8 -out results.json
//	sweep -benchmarks gcc,swim -dpolicies parallel,seldm+waypred -dlatencies 1,2 -format csv
//	sweep -dsizes 8k,16k,32k,64k -dpolicies seldm+waypred -insts 1000000
//	sweep -benchmarks all -dways 1,4 -shard 0/4   # first quarter of the grid
//	sweep -benchmarks all -dpolicies all -trace traces   # replay captures
//	sweep -benchmarks all -dpolicies all -store results/   # incremental runs
//
// With -store naming a directory, results are memoized in the crash-safe
// on-disk store (internal/resultdb) that waycached serves: a re-run of an
// identical grid simulates nothing — every cell is recalled from disk with
// byte-identical output — and an overlapping grid simulates only its new
// cells.
//
// With -trace naming a directory of captured trace files (written by
// tracegen -capture, one <benchmark>.wct per benchmark), cells whose
// benchmark has a valid capture covering -insts replay it instead of
// re-walking the generator — identical records, no generation cost.
// Benchmarks without a usable capture fall back to the walker, and every
// fallback is reported on stderr with its reason (missing file, stale
// seed, too few instructions) so a -trace run that re-simulated is
// visible, never silent.
//
// The grid is the cartesian product of every dimension flag; omitted
// dimensions stay at the paper's Table 1 defaults. Output (JSON or CSV)
// is ordered by grid position, so it is byte-identical for any -workers
// value. Shards 0/n..n-1/n keep that order: their CSV bodies (headers
// stripped) concatenate to the exact full-grid body, and their JSON
// arrays merge element-wise into the full-grid array — the property the
// distributed coordinator (cmd/sweepctl, docs/DISTRIBUTED.md) is built
// on. Interrupting (ctrl-C) cancels the sweep promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	"waycache/internal/resultdb"
	"waycache/internal/sweep"
	"waycache/internal/tracestore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	gridFlags := sweep.RegisterGridFlags(flag.CommandLine)
	storeDir := flag.String("store", "", "directory of the on-disk result store; repeated runs recall results instead of re-simulating")
	traceDir := flag.String("trace", "", "directory of captured traces (<benchmark>.wct); matching benchmarks replay instead of re-walking")
	traceStore := flag.String("tracestore", "", "content-addressed trace store directory resolving trace://<hash> references (-traces)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel simulations")
	shard := flag.String("shard", "", "run only shard i of n contiguous grid shards, as 'i/n'")
	format := flag.String("format", "json", "output format: json or csv")
	out := flag.String("out", "-", "output file ('-' for stdout)")
	progress := flag.Bool("progress", true, "report live progress on stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: memprofile:", err)
			}
		}()
	}

	g, err := gridFlags.Grid()
	if err != nil {
		return err
	}

	cfgs := g.Configs()
	if *shard != "" {
		i, n, err := sweep.ParseShard(*shard)
		if err != nil {
			return err
		}
		cfgs = sweep.Shard(cfgs, i, n)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := sweep.Options{Workers: *workers, TraceDir: *traceDir}
	if *traceStore != "" {
		if opts.TraceStore, err = tracestore.Open(*traceStore); err != nil {
			return err
		}
	}
	store := sweep.NewStore()
	if *storeDir != "" {
		var db *resultdb.DB
		if store, db, err = sweep.OpenDiskStore(*storeDir); err != nil {
			return err
		}
		// Close writes the index snapshot; results are already durable in
		// the log, so a close failure is worth a warning, not a bad exit.
		defer func() {
			if cerr := db.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "sweep: closing store:", cerr)
			}
		}()
	}
	opts.Store = store
	if *progress {
		opts.Progress = sweep.TextProgress(os.Stderr, store)
	}
	eng := sweep.New(opts)

	fmt.Fprintf(os.Stderr, "sweep: %d configs, %d workers\n", len(cfgs), *workers)
	results, err := eng.RunConfigs(ctx, cfgs)
	if err != nil {
		return err
	}
	sw := sweep.NewSweep(results)
	if err := sw.WriteOutput(*out, *format); err != nil {
		return err
	}
	// A -trace run that reverted to the walker anywhere must say so: the
	// records are identical either way, but the run cost (and what the
	// operator believes happened) is not.
	for _, line := range sweep.FormatFallbacks(eng.TraceFallbacks()) {
		fmt.Fprintf(os.Stderr, "sweep: warning: replayed from walker — %s\n", line)
	}
	fmt.Fprintf(os.Stderr, "sweep: done — %d records, %d simulated, %d memo hits, %d results in store\n",
		len(sw.Records), store.Misses(), store.Hits(), store.Len())
	if berr := store.BackendErr(); berr != nil {
		fmt.Fprintln(os.Stderr, "sweep: warning: result store degraded:", berr)
	}
	return nil
}
