// Command sweep runs arbitrary design-space sweeps over the simulator —
// grids far beyond the fixed ones the paper plots — on a parallel worker
// pool with memoized, deterministically ordered results.
//
// Usage:
//
//	sweep -dways 1,2,4,8,16 -dpolicies all -benchmarks all -workers 8 -out results.json
//	sweep -benchmarks gcc,swim -dpolicies parallel,seldm+waypred -dlatencies 1,2 -format csv
//	sweep -dsizes 8k,16k,32k,64k -dpolicies seldm+waypred -insts 1000000
//	sweep -benchmarks all -dways 1,4 -shard 0/4   # first quarter of the grid
//	sweep -benchmarks all -dpolicies all -trace traces   # replay captures
//	sweep -benchmarks all -dpolicies all -store results/   # incremental runs
//
// With -store naming a directory, results are memoized in the crash-safe
// on-disk store (internal/resultdb) that waycached serves: a re-run of an
// identical grid simulates nothing — every cell is recalled from disk with
// byte-identical output — and an overlapping grid simulates only its new
// cells.
//
// With -trace naming a directory of captured trace files (written by
// tracegen -capture, one <benchmark>.wct per benchmark), cells whose
// benchmark has a valid capture covering -insts replay it instead of
// re-walking the generator — identical records, no generation cost;
// benchmarks without a usable capture fall back to the walker.
//
// The grid is the cartesian product of every dimension flag; omitted
// dimensions stay at the paper's Table 1 defaults. Output (JSON or CSV)
// is ordered by grid position, so it is byte-identical for any -workers
// value. Shards 0/n..n-1/n keep that order: their CSV bodies (headers
// stripped) concatenate to the exact full-grid body, and their JSON
// arrays merge element-wise into the full-grid array. Interrupting
// (ctrl-C) cancels the sweep promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"

	"waycache/internal/resultdb"
	"waycache/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	benches := flag.String("benchmarks", "all", "comma-separated benchmarks, or 'all'")
	dpols := flag.String("dpolicies", "parallel", "d-cache policies (paper names, e.g. parallel,waypred-pc,seldm+waypred) or 'all'")
	ipols := flag.String("ipolicies", "parallel", "i-cache policies (parallel, waypred) or 'all'")
	dsizes := flag.String("dsizes", "", "d-cache sizes in bytes (k/m suffixes ok), e.g. 8k,16k,32k")
	dways := flag.String("dways", "", "d-cache associativities, e.g. 1,2,4,8,16")
	dblocks := flag.String("dblocks", "", "d-cache block sizes in bytes")
	isizes := flag.String("isizes", "", "i-cache sizes in bytes (k/m suffixes ok)")
	iways := flag.String("iways", "", "i-cache associativities")
	iblocks := flag.String("iblocks", "", "i-cache block sizes in bytes")
	dlats := flag.String("dlatencies", "", "base d-cache hit latencies in cycles, e.g. 1,2")
	tsizes := flag.String("tablesizes", "", "prediction-table sizes, e.g. 512,1024,2048")
	vsizes := flag.String("victimsizes", "", "victim-list sizes, e.g. 4,16,64")
	insts := flag.Int64("insts", 400_000, "instructions per configuration")
	storeDir := flag.String("store", "", "directory of the on-disk result store; repeated runs recall results instead of re-simulating")
	traceDir := flag.String("trace", "", "directory of captured traces (<benchmark>.wct); matching benchmarks replay instead of re-walking")
	paperCosts := flag.Bool("papercosts", false, "use the paper's Table 3 energy constants instead of mini-CACTI")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel simulations")
	shard := flag.String("shard", "", "run only shard i of n contiguous grid shards, as 'i/n'")
	format := flag.String("format", "json", "output format: json or csv")
	out := flag.String("out", "-", "output file ('-' for stdout)")
	progress := flag.Bool("progress", true, "report live progress on stderr")
	flag.Parse()

	g := sweep.Grid{Insts: *insts, UsePaperCosts: *paperCosts}
	var err error
	if g.Benchmarks, err = sweep.ParseBenchmarks(*benches); err != nil {
		return err
	}
	if g.DPolicies, err = sweep.ParseDPolicies(*dpols); err != nil {
		return err
	}
	if g.IPolicies, err = sweep.ParseIPolicies(*ipols); err != nil {
		return err
	}
	for _, dim := range []struct {
		flag string
		dst  *[]int
	}{
		{*dsizes, &g.DSizes}, {*dways, &g.DWays}, {*dblocks, &g.DBlocks},
		{*isizes, &g.ISizes}, {*iways, &g.IWays}, {*iblocks, &g.IBlocks},
		{*dlats, &g.DLatencies}, {*tsizes, &g.TableSizes}, {*vsizes, &g.VictimSizes},
	} {
		if *dim.dst, err = sweep.ParseIntList(dim.flag); err != nil {
			return err
		}
	}

	cfgs := g.Configs()
	if *shard != "" {
		i, n, err := parseShard(*shard)
		if err != nil {
			return err
		}
		cfgs = sweep.Shard(cfgs, i, n)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := sweep.Options{Workers: *workers, TraceDir: *traceDir}
	store := sweep.NewStore()
	if *storeDir != "" {
		var db *resultdb.DB
		if store, db, err = sweep.OpenDiskStore(*storeDir); err != nil {
			return err
		}
		// Close writes the index snapshot; results are already durable in
		// the log, so a close failure is worth a warning, not a bad exit.
		defer func() {
			if cerr := db.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "sweep: closing store:", cerr)
			}
		}()
	}
	opts.Store = store
	if *progress {
		opts.Progress = sweep.TextProgress(os.Stderr, store)
	}
	eng := sweep.New(opts)

	fmt.Fprintf(os.Stderr, "sweep: %d configs, %d workers\n", len(cfgs), *workers)
	results, err := eng.RunConfigs(ctx, cfgs)
	if err != nil {
		return err
	}
	sw := sweep.NewSweep(results)

	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "-" {
		if f, err = os.Create(*out); err != nil {
			return err
		}
		w = f
	}
	switch *format {
	case "json":
		err = sw.WriteJSON(w)
	case "csv":
		err = sw.WriteCSV(w)
	default:
		err = fmt.Errorf("unknown format %q (want json or csv)", *format)
	}
	if f != nil {
		// Surface close/flush errors: a truncated -out file must not
		// exit 0 with a success message.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: done — %d records, %d simulated, %d memo hits, %d results in store\n",
		len(sw.Records), store.Misses(), store.Hits(), store.Len())
	if berr := store.BackendErr(); berr != nil {
		fmt.Fprintln(os.Stderr, "sweep: warning: result store degraded:", berr)
	}
	return nil
}

// parseShard parses "i/n".
func parseShard(s string) (i, n int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/n, e.g. 0/4)", s)
	}
	if n <= 0 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("bad -shard %q: need 0 <= i < n", s)
	}
	return i, n, nil
}
