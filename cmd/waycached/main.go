// Command waycached is the long-lived HTTP sweep service: submit design
// space grids, poll their progress, and query or aggregate the accumulated
// result corpus — without re-simulating anything a previous job or process
// already ran.
//
// Usage:
//
//	waycached -addr :8080 -store results/
//	waycached -addr 127.0.0.1:9090 -workers 8 -trace traces/
//
// With -store the service fronts the crash-safe on-disk result database in
// that directory (internal/resultdb): results survive restarts, and the
// corpus written by offline `sweep -store` runs is immediately servable.
// Without it, results live only in process memory.
//
// Endpoints (full reference with examples in docs/HTTP_API.md):
//
//	POST   /api/v1/jobs                 submit a sweep.Grid JSON body,
//	                                    optionally one shard ("shard":"i/n")
//	                                    under a client-supplied "name"
//	GET    /api/v1/jobs                 list jobs
//	GET    /api/v1/jobs/{id}            poll one job's progress
//	POST   /api/v1/jobs/{id}/cancel     cancel a queued or running job
//	                                    (terminal "cancelled" state)
//	DELETE /api/v1/jobs/{id}            evict a terminal job's bookkeeping
//	GET    /api/v1/jobs/{id}/results    finished records (json or csv),
//	                                    byte-identical to cmd/sweep output
//	GET    /api/v1/jobs/{id}/export     canonical key+result stream for the
//	                                    distributed coordinator (sweepctl)
//	GET    /api/v1/jobs/{id}/events     Server-Sent Events progress stream
//	                                    (terminal status event, then EOF)
//	POST   /api/v1/admin/compact        compact the on-disk result log
//	                                    (-store only)
//	GET    /api/v1/traces               list stored trace hashes (-tracestore)
//	GET    /api/v1/traces/{hash}        download a stored trace (HEAD probes)
//	PUT    /api/v1/traces/{hash}        upload a trace under its sha256
//	GET    /api/v1/results              filter the whole corpus by
//	                                    benchmark/policy/geometry
//	GET    /api/v1/aggregate            group-by summaries over the corpus
//	GET    /api/v1/stats                store and job counters
//	GET    /healthz                     liveness
//	GET    /debug/pprof/                live net/http/pprof profiles
//	                                    (bearer-authed when -auth-tokens
//	                                    is set, like the API)
//
// Jobs from any number of clients run concurrently under one fair-share
// simulation budget (-workers slots total): freed slots rotate across
// clients, so a giant grid never starves a small job, and outputs stay
// byte-identical to sequential runs at any budget. With -auth-tokens the
// service requires bearer tokens and meters fair share and -rate limits
// per token name; without it, per remote host.
//
// Several waycached instances form the worker fleet of a distributed
// sweep: cmd/sweepctl splits a grid into deterministic shards, runs one
// shard job per host, and merges the exports byte-identically (see
// docs/DISTRIBUTED.md).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"waycache/internal/server"
	"waycache/internal/sweep"
	"waycache/internal/tracestore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "waycached:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "directory of the on-disk result store (empty: memory only)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "global simulation budget: max concurrent simulations across all jobs")
	traceDir := flag.String("trace", "", "directory of captured traces (<benchmark>.wct) to replay")
	traceStoreDir := flag.String("tracestore", "", "content-addressed trace store directory: serves /api/v1/traces and resolves trace:// job references")
	authTokens := flag.String("auth-tokens", "", "comma-separated name=token bearer credentials; empty runs the service open")
	authTokensFile := flag.String("auth-tokens-file", "", "file of name=token lines (#-comments allowed); reloaded on SIGHUP and on mtime change, so tokens rotate without a restart")
	rate := flag.Float64("rate", 0, "per-client request rate limit in requests/sec (0: unlimited)")
	burst := flag.Int("burst", 0, "rate-limit burst size (default 16)")
	flag.Parse()

	opts := server.Options{Workers: *workers, TraceDir: *traceDir, RatePerSec: *rate, RateBurst: *burst}
	switch {
	case *authTokens != "" && *authTokensFile != "":
		return fmt.Errorf("-auth-tokens and -auth-tokens-file are mutually exclusive")
	case *authTokens != "":
		tokens, err := server.ParseAuthTokens(*authTokens)
		if err != nil {
			return err
		}
		opts.AuthTokens = tokens
		fmt.Fprintf(os.Stderr, "waycached: bearer auth enabled for %d clients\n", len(tokens))
	case *authTokensFile != "":
		tokens, err := server.ParseAuthTokensFile(*authTokensFile)
		if err != nil {
			return err
		}
		opts.AuthTokens = tokens
		fmt.Fprintf(os.Stderr, "waycached: bearer auth enabled for %d clients (rotatable via %s)\n", len(tokens), *authTokensFile)
	}
	if *traceStoreDir != "" {
		ts, err := tracestore.Open(*traceStoreDir)
		if err != nil {
			return err
		}
		opts.TraceStore = ts
		hashes, err := ts.Hashes()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "waycached: trace store %s holds %d traces\n", *traceStoreDir, len(hashes))
	}
	if *storeDir != "" {
		store, db, err := sweep.OpenDiskStore(*storeDir)
		if err != nil {
			return err
		}
		defer db.Close()
		opts.Store = store
		opts.Compactor = db
		fmt.Fprintf(os.Stderr, "waycached: store %s holds %d results\n", *storeDir, store.Len())
	} else {
		opts.Store = sweep.NewStore()
	}

	srv := server.New(opts)
	defer srv.Close()
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *authTokensFile != "" {
		go watchAuthTokens(ctx, srv, *authTokensFile)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "waycached: listening on %s\n", *addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let in-flight responses finish, then
	// cancel the running job and flush the store index via the defers.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(os.Stderr, "waycached: shut down")
	return nil
}

// watchAuthTokens hot-reloads the -auth-tokens-file on SIGHUP and on
// mtime change (polled every few seconds, for operators whose process
// manager cannot signal). A file that fails to parse is logged and the
// previous token set stays live — rotation can never lock the fleet out
// by a half-written file. In-flight jobs keep the fair-share identity
// captured at submission regardless of rotations.
func watchAuthTokens(ctx context.Context, srv *server.Server, path string) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	lastMod := time.Time{}
	if st, err := os.Stat(path); err == nil {
		lastMod = st.ModTime()
	}
	tick := time.NewTicker(3 * time.Second)
	defer tick.Stop()

	reload := func(why string) {
		tokens, err := server.ParseAuthTokensFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "waycached: token reload (%s) failed, keeping previous tokens: %v\n", why, err)
			return
		}
		if err := srv.SetAuthTokens(tokens); err != nil {
			fmt.Fprintf(os.Stderr, "waycached: token reload (%s) rejected: %v\n", why, err)
			return
		}
		fmt.Fprintf(os.Stderr, "waycached: rotated bearer tokens (%s): %d clients\n", why, len(tokens))
	}

	for {
		select {
		case <-ctx.Done():
			return
		case <-hup:
			reload("SIGHUP")
		case <-tick.C:
			st, err := os.Stat(path)
			if err != nil {
				// Transient (an atomic rename mid-swap): keep serving the
				// current tokens and check again next tick.
				continue
			}
			if mod := st.ModTime(); !mod.Equal(lastMod) {
				lastMod = mod
				reload("mtime change")
			}
		}
	}
}
