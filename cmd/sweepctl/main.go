// Command sweepctl is the distributed sweep coordinator CLI: it fans one
// design-space grid out across multiple waycached hosts and merges their
// results into output byte-identical to a single-host `sweep` run of the
// same grid.
//
// Usage:
//
//	sweepctl -hosts http://10.0.0.1:8080,http://10.0.0.2:8080 \
//	    -benchmarks all -dpolicies all -dways 2,4 -insts 400000
//	sweepctl -hosts-file fleet.txt -shards 8 -store results/ -format csv
//
// The grid flags are cmd/sweep's; the grid is split into -shards
// deterministic contiguous spans (sweep.SpanOf; default one per host),
// each submitted as a span job to a host. Work is elastic from there: a
// host that dies mid-run has its span requeued to a survivor (up to
// -retries submissions per span of work), a host that stalls for -stall
// without progress has its finished prefix stolen through the partial
// export watermark and only the remainder re-run, and in the tail idle
// hosts speculatively duplicate stalled spans outright — determinism
// makes the duplicate free, because both copies produce identical bytes
// and the first full export wins. Every control request runs under one
// retry policy with capped exponential backoff and deterministic seeded
// jitter.
//
// Membership is elastic too: -hosts-file names a file of host URLs (one
// per line, #-comments) that is read at startup and watched for changes.
// Hosts appended mid-run join the fleet (they receive the grid's traces
// first); hosts removed from it drain — they finish their current span
// and take no more. Hosts passed via -hosts are never drained by file
// edits.
//
// Span results come back in canonical encoded form and, with -store,
// are bulk-ingested into a local on-disk result store, building one
// corpus from the whole fleet. Protocol and failure semantics:
// docs/DISTRIBUTED.md.
//
// Grids may replay content-addressed traces: -traces maps benchmarks to
// trace://<sha256> references (printed by traceconv on import), and
// before any span is submitted the coordinator pushes every referenced
// trace to the hosts that lack it — from the local -tracestore, or
// relayed from whichever host already has it — so no host needs a
// pre-provisioned trace directory. A host that cannot be brought up to
// date is dropped from the run up front; late joiners get the same
// treatment before their first span.
//
// Benchmarks that a remote host re-simulated from the walker instead of
// replaying a capture are reported per span on stderr — a distributed
// -trace run never falls back silently.
//
// Span progress streams over each host's Server-Sent Events endpoint
// (GET /api/v1/jobs/{id}/events); hosts whose stream cannot be
// established fall back transparently to -poll status polling.
// Fleets running with -auth-tokens take a bearer credential via -token
// or the WAYCACHE_TOKEN environment variable (preferred for shared
// machines: flags are visible in process listings).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"waycache/internal/coord"
	"waycache/internal/resultdb"
	"waycache/internal/sweep"
	"waycache/internal/tracestore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweepctl:", err)
		os.Exit(1)
	}
}

func run() error {
	gridFlags := sweep.RegisterGridFlags(flag.CommandLine)
	hosts := flag.String("hosts", "", "comma-separated waycached base URLs, e.g. http://10.0.0.1:8080,http://10.0.0.2:8080")
	hostsFile := flag.String("hosts-file", "", "file of waycached base URLs (one per line, #-comments), watched for mid-run joins and drains")
	shards := flag.Int("shards", 0, "contiguous grid spans to distribute (default: one per host)")
	retries := flag.Int("retries", 3, "max submissions per span of work across host reassignments")
	poll := flag.Duration("poll", 250*time.Millisecond, "per-span status poll interval (also the hosts-file watch tick)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline for host control requests (a hanging host fails over like a dead one; exports get 10x)")
	stall := flag.Duration("stall", 10*time.Second, "how long a span may go without progress before idle hosts steal its finished prefix or speculate a duplicate")
	minSteal := flag.Int("min-steal", 1, "minimum finished-prefix configs worth stealing from a straggler")
	noSpec := flag.Bool("no-speculate", false, "disable tail speculation (stealing still happens)")
	seed := flag.Uint64("seed", 0, "seed for the deterministic retry/backoff jitter (default: derived from the run name)")
	name := flag.String("name", "", "run identity for remote job names (default: derived from the grid)")
	storeDir := flag.String("store", "", "directory of a local on-disk result store to bulk-ingest span results into")
	traceStoreDir := flag.String("tracestore", "", "local content-addressed trace store; referenced trace://<hash> objects are pushed to hosts that lack them")
	format := flag.String("format", "json", "output format: json or csv")
	out := flag.String("out", "-", "output file ('-' for stdout)")
	progress := flag.Bool("progress", true, "report live aggregate progress on stderr")
	token := flag.String("token", "", "bearer token for hosts running with -auth-tokens (default: $WAYCACHE_TOKEN)")
	flag.Parse()

	hostList := splitHosts(*hosts)
	if len(hostList) == 0 && *hostsFile == "" {
		return fmt.Errorf("need -hosts or -hosts-file")
	}
	g, err := gridFlags.Grid()
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	authToken := *token
	if authToken == "" {
		authToken = os.Getenv("WAYCACHE_TOKEN")
	}

	opts := coord.Options{
		Hosts:          hostList,
		HostsFile:      *hostsFile,
		Shards:         *shards,
		MaxAttempts:    *retries,
		PollInterval:   *poll,
		RequestTimeout: *timeout,
		StallAfter:     *stall,
		MinSteal:       *minSteal,
		NoSpeculate:    *noSpec,
		Seed:           *seed,
		Name:           *name,
		Token:          authToken,
		Logf: func(f string, args ...any) {
			fmt.Fprintf(os.Stderr, f+"\n", args...)
		},
	}
	if *traceStoreDir != "" {
		if opts.TraceStore, err = tracestore.Open(*traceStoreDir); err != nil {
			return err
		}
	}
	if *storeDir != "" {
		db, err := resultdb.Open(*storeDir)
		if err != nil {
			return err
		}
		// Close writes the index snapshot; ingested results are already
		// durable in the log, so a close failure warns rather than fails.
		defer func() {
			if cerr := db.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "sweepctl: closing store:", cerr)
			}
		}()
		opts.Backend = db
	}
	if *progress {
		opts.Progress = sweep.TextProgress(os.Stderr, nil)
	}

	fmt.Fprintf(os.Stderr, "sweepctl: %d configs over %d starting hosts\n", g.Size(), len(hostList))

	res, err := coord.Run(ctx, g, opts)
	if err != nil {
		return err
	}

	if err := res.Sweep.WriteOutput(*out, *format); err != nil {
		return err
	}

	for _, sh := range res.Shards {
		how := ""
		if sh.Stolen {
			how = ", stolen prefix"
		}
		if sh.Speculative {
			how += ", speculative"
		}
		fmt.Fprintf(os.Stderr, "sweepctl: span %s: %d configs on %s (%s, %d attempt(s)%s)\n",
			sweep.FormatSpan(sh.Lo, sh.Hi), sh.Configs, sh.Host, sh.JobID, sh.Attempts, how)
		for _, line := range sweep.FormatFallbacks(sh.TraceFallbacks) {
			fmt.Fprintf(os.Stderr, "sweepctl: warning: span %s replayed from walker — %s\n",
				sweep.FormatSpan(sh.Lo, sh.Hi), line)
		}
		for _, w := range sh.Warnings {
			fmt.Fprintf(os.Stderr, "sweepctl: warning: span %s: %s\n", sweep.FormatSpan(sh.Lo, sh.Hi), w)
		}
	}
	for _, h := range res.Hosts {
		joined := ""
		if h.Joined {
			joined = ", joined mid-run"
		}
		fmt.Fprintf(os.Stderr, "sweepctl: host %s: %s%s — %d flight(s), %d piece(s) (%d configs), %d steal(s), %d speculation(s)\n",
			h.Host, h.State, joined, h.Flights, h.Pieces, h.Configs, h.Steals, h.Speculations)
	}
	fmt.Fprintf(os.Stderr, "sweepctl: done — %d records merged", len(res.Sweep.Records))
	if opts.Backend != nil {
		fmt.Fprintf(os.Stderr, ", %d ingested into %s", res.Ingested, *storeDir)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}

// splitHosts splits the -hosts flag, trimming blanks and trailing slashes
// so URL joining stays predictable.
func splitHosts(s string) []string {
	var out []string
	for _, h := range strings.Split(s, ",") {
		if h = strings.TrimRight(strings.TrimSpace(h), "/"); h != "" {
			out = append(out, h)
		}
	}
	return out
}
