// Command sweepctl is the distributed sweep coordinator CLI: it fans one
// design-space grid out across multiple waycached hosts and merges their
// shard results into output byte-identical to a single-host `sweep` run
// of the same grid.
//
// Usage:
//
//	sweepctl -hosts http://10.0.0.1:8080,http://10.0.0.2:8080 \
//	    -benchmarks all -dpolicies all -dways 2,4 -insts 400000
//	sweepctl -hosts http://a:8080,http://b:8080 -shards 8 -store results/ -format csv
//
// The grid flags are cmd/sweep's; the grid is split into -shards
// deterministic contiguous shards (sweep.Shard; default one per host),
// each submitted as a shard job to a host. A host that dies mid-run has
// its shard reassigned to a survivor (up to -retries submissions per
// shard). Shard results come back in canonical encoded form and, with
// -store, are bulk-ingested into a local on-disk result store, building
// one corpus from the whole fleet. Protocol and failure semantics:
// docs/DISTRIBUTED.md.
//
// Grids may replay content-addressed traces: -traces maps benchmarks to
// trace://<sha256> references (printed by traceconv on import), and
// before any shard is submitted the coordinator pushes every referenced
// trace to the hosts that lack it — from the local -tracestore, or
// relayed from whichever host already has it — so no host needs a
// pre-provisioned trace directory. A host that cannot be brought up to
// date is dropped from the run up front.
//
// Benchmarks that a remote host re-simulated from the walker instead of
// replaying a capture are reported per shard on stderr — a distributed
// -trace run never falls back silently.
//
// Shard progress streams over each host's Server-Sent Events endpoint
// (GET /api/v1/jobs/{id}/events); hosts whose stream cannot be
// established fall back transparently to -poll status polling.
// Fleets running with -auth-tokens take a bearer credential via -token
// or the WAYCACHE_TOKEN environment variable (preferred for shared
// machines: flags are visible in process listings).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"waycache/internal/coord"
	"waycache/internal/resultdb"
	"waycache/internal/sweep"
	"waycache/internal/tracestore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweepctl:", err)
		os.Exit(1)
	}
}

func run() error {
	gridFlags := sweep.RegisterGridFlags(flag.CommandLine)
	hosts := flag.String("hosts", "", "comma-separated waycached base URLs (required), e.g. http://10.0.0.1:8080,http://10.0.0.2:8080")
	shards := flag.Int("shards", 0, "contiguous grid shards to distribute (default: one per host)")
	retries := flag.Int("retries", 3, "max submissions per shard across host reassignments")
	poll := flag.Duration("poll", 250*time.Millisecond, "per-shard status poll interval")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline for host control requests (a hanging host fails over like a dead one; exports get 10x)")
	name := flag.String("name", "", "run identity for remote job names (default: derived from the grid)")
	storeDir := flag.String("store", "", "directory of a local on-disk result store to bulk-ingest shard results into")
	traceStoreDir := flag.String("tracestore", "", "local content-addressed trace store; referenced trace://<hash> objects are pushed to hosts that lack them")
	format := flag.String("format", "json", "output format: json or csv")
	out := flag.String("out", "-", "output file ('-' for stdout)")
	progress := flag.Bool("progress", true, "report live aggregate progress on stderr")
	token := flag.String("token", "", "bearer token for hosts running with -auth-tokens (default: $WAYCACHE_TOKEN)")
	flag.Parse()

	hostList := splitHosts(*hosts)
	if len(hostList) == 0 {
		return fmt.Errorf("need -hosts (comma-separated waycached base URLs)")
	}
	g, err := gridFlags.Grid()
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	authToken := *token
	if authToken == "" {
		authToken = os.Getenv("WAYCACHE_TOKEN")
	}

	opts := coord.Options{
		Hosts:          hostList,
		Shards:         *shards,
		MaxAttempts:    *retries,
		PollInterval:   *poll,
		RequestTimeout: *timeout,
		Name:           *name,
		Token:          authToken,
		Logf: func(f string, args ...any) {
			fmt.Fprintf(os.Stderr, f+"\n", args...)
		},
	}
	if *traceStoreDir != "" {
		if opts.TraceStore, err = tracestore.Open(*traceStoreDir); err != nil {
			return err
		}
	}
	if *storeDir != "" {
		db, err := resultdb.Open(*storeDir)
		if err != nil {
			return err
		}
		// Close writes the index snapshot; ingested results are already
		// durable in the log, so a close failure warns rather than fails.
		defer func() {
			if cerr := db.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "sweepctl: closing store:", cerr)
			}
		}()
		opts.Backend = db
	}
	if *progress {
		opts.Progress = sweep.TextProgress(os.Stderr, nil)
	}

	nShards := *shards
	if nShards <= 0 {
		nShards = len(hostList)
	}
	fmt.Fprintf(os.Stderr, "sweepctl: %d configs in %d shards over %d hosts\n",
		g.Size(), nShards, len(hostList))

	res, err := coord.Run(ctx, g, opts)
	if err != nil {
		return err
	}

	if err := res.Sweep.WriteOutput(*out, *format); err != nil {
		return err
	}

	for _, sh := range res.Shards {
		fmt.Fprintf(os.Stderr, "sweepctl: shard %d: %d configs on %s (%s, %d attempt(s))\n",
			sh.Index, sh.Configs, sh.Host, sh.JobID, sh.Attempts)
		for _, line := range sweep.FormatFallbacks(sh.TraceFallbacks) {
			fmt.Fprintf(os.Stderr, "sweepctl: warning: shard %d replayed from walker — %s\n", sh.Index, line)
		}
	}
	fmt.Fprintf(os.Stderr, "sweepctl: done — %d records merged", len(res.Sweep.Records))
	if opts.Backend != nil {
		fmt.Fprintf(os.Stderr, ", %d ingested into %s", res.Ingested, *storeDir)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}

// splitHosts splits the -hosts flag, trimming blanks and trailing slashes
// so URL joining stays predictable.
func splitHosts(s string) []string {
	var out []string
	for _, h := range strings.Split(s, ",") {
		if h = strings.TrimRight(strings.TrimSpace(h), "/"); h != "" {
			out = append(out, h)
		}
	}
	return out
}
