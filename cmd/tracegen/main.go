// Command tracegen inspects the synthetic workload generators: it prints a
// benchmark's static shape, its dynamic instruction mix, and optionally a
// disassembly-style listing of the first instructions.
//
// Usage:
//
//	tracegen -bench swim -n 500000
//	tracegen -bench li -dump 40
package main

import (
	"flag"
	"fmt"
	"os"

	"waycache/internal/isa"
	"waycache/internal/trace"
	"waycache/internal/workload"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark name")
	n := flag.Int64("n", 500_000, "instructions to sample for the mix")
	dump := flag.Int("dump", 0, "print the first N instructions")
	flag.Parse()

	p, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog := p.MustBuild()
	fmt.Printf("benchmark  %s (seed %#x)\n", p.Name, p.Seed)
	fmt.Printf("functions  %d\n", len(prog.Funcs))
	fmt.Printf("code size  %d bytes\n", prog.CodeBytes())
	fmt.Printf("streams    %d\n", len(prog.Streams))
	for i, s := range prog.Streams {
		fmt.Printf("  [%d] %-12s kind=%d base=%#x len=%d stride=%d adv=%d\n",
			i, s.Name, s.Kind, s.Base, s.Length, s.Stride, s.AdvanceEvery)
	}

	w := p.NewWalker()
	var in trace.Inst
	if *dump > 0 {
		fmt.Println("\nfirst instructions:")
		for i := 0; i < *dump && w.Next(&in); i++ {
			switch {
			case in.Kind.IsMem():
				fmt.Printf("  %#08x  %-5s addr=%#x (base=%#x off=%d)\n",
					in.PC, in.Kind, in.Addr, in.BaseValue, in.Offset)
			case in.Kind.IsControl():
				fmt.Printf("  %#08x  %-5s taken=%v target=%#x\n", in.PC, in.Kind, in.Taken, in.Target)
			default:
				fmt.Printf("  %#08x  %-5s r%d <- r%d, r%d\n", in.PC, in.Kind, in.Dst, in.Src1, in.Src2)
			}
		}
		return
	}

	counts := map[isa.Kind]int64{}
	var total int64
	for total = 0; total < *n && w.Next(&in); total++ {
		counts[in.Kind]++
	}
	fmt.Printf("\ndynamic mix over %d instructions:\n", total)
	for k := isa.KindNop; k < isa.Kind(isa.NumKinds); k++ {
		if counts[k] == 0 {
			continue
		}
		fmt.Printf("  %-6s %6.2f%%\n", k, 100*float64(counts[k])/float64(total))
	}
}
