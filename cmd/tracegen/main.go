// Command tracegen inspects the synthetic workload generators and captures
// their dynamic instruction streams to trace files.
//
// By default it prints a benchmark's static shape and dynamic instruction
// mix, or (with -dump) a disassembly-style listing of the first
// instructions. With -capture it instead records the first -n instructions
// to a trace file (versioned varint-delta binary; byte-level spec in
// docs/TRACE_FORMAT.md) that cachesim -trace, sweep -trace and
// core.Config.Trace replay in place of the live generator — the replayed
// stream is identical to the walker's, so results match byte for byte
// while skipping all generation cost.
//
// Usage:
//
//	tracegen -bench swim -n 500000                      # dynamic mix
//	tracegen -bench li -dump 40                         # listing
//	tracegen -bench gcc -n 1000000 -capture -o traces/gcc.wct
//	tracegen -capture -all -n 1000000 -o traces         # whole suite
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"waycache/internal/isa"
	"waycache/internal/trace"
	"waycache/internal/workload"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark name")
	n := flag.Int64("n", 500_000, "instructions to sample for the mix, or to capture")
	dump := flag.Int("dump", 0, "print the first N instructions")
	capture := flag.Bool("capture", false, "capture the first -n instructions to a trace file")
	all := flag.Bool("all", false, "with -capture: capture every suite benchmark (-o names a directory)")
	out := flag.String("o", "", "capture output path (default <bench>.wct, or a directory with -all)")
	flag.Parse()

	if *capture {
		if err := captureTraces(*bench, *all, *out, *n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	p, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog := p.MustBuild()
	fmt.Printf("benchmark  %s (seed %#x)\n", p.Name, p.Seed)
	fmt.Printf("functions  %d\n", len(prog.Funcs))
	fmt.Printf("code size  %d bytes\n", prog.CodeBytes())
	fmt.Printf("streams    %d\n", len(prog.Streams))
	for i, s := range prog.Streams {
		fmt.Printf("  [%d] %-12s kind=%d base=%#x len=%d stride=%d adv=%d\n",
			i, s.Name, s.Kind, s.Base, s.Length, s.Stride, s.AdvanceEvery)
	}

	w := p.NewWalker()
	var in trace.Inst
	if *dump > 0 {
		fmt.Println("\nfirst instructions:")
		for i := 0; i < *dump && w.Next(&in); i++ {
			switch {
			case in.Kind.IsMem():
				fmt.Printf("  %#08x  %-5s addr=%#x (base=%#x off=%d)\n",
					in.PC, in.Kind, in.Addr, in.BaseValue, in.Offset)
			case in.Kind.IsControl():
				fmt.Printf("  %#08x  %-5s taken=%v target=%#x\n", in.PC, in.Kind, in.Taken, in.Target)
			default:
				fmt.Printf("  %#08x  %-5s r%d <- r%d, r%d\n", in.PC, in.Kind, in.Dst, in.Src1, in.Src2)
			}
		}
		return
	}

	counts := map[isa.Kind]int64{}
	var total int64
	for total = 0; total < *n && w.Next(&in); total++ {
		counts[in.Kind]++
	}
	fmt.Printf("\ndynamic mix over %d instructions:\n", total)
	for k := isa.KindNop; k < isa.Kind(isa.NumKinds); k++ {
		if counts[k] == 0 {
			continue
		}
		fmt.Printf("  %-6s %6.2f%%\n", k, 100*float64(counts[k])/float64(total))
	}
}

// captureTraces records n instructions of one benchmark (or, with all set,
// of every suite benchmark) into replayable trace files.
func captureTraces(bench string, all bool, out string, n int64) error {
	if n <= 0 {
		return fmt.Errorf("tracegen: -capture needs a positive -n, got %d", n)
	}
	var profiles []workload.Profile
	if all {
		profiles = workload.Suite()
		if out == "" {
			out = "."
		}
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
	} else {
		p, err := workload.ByName(bench)
		if err != nil {
			return err
		}
		profiles = []workload.Profile{p}
	}
	for _, p := range profiles {
		path := out
		if all {
			path = filepath.Join(out, p.Name+trace.FileExt)
		} else if path == "" {
			path = p.Name + trace.FileExt
		}
		if err := p.CaptureFile(path, n); err != nil {
			return err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("captured %-8s %d instructions -> %s (%d bytes, %.2f B/inst)\n",
			p.Name, n, path, fi.Size(), float64(fi.Size())/float64(n))
	}
	return nil
}
