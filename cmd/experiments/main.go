// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run table4,fig6,fig11 -insts 1000000
//	experiments -run fig8 -benchmarks gcc,swim
//
// Each experiment prints the same rows/series the paper reports, produced
// by full simulations of the synthetic benchmark suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"waycache/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment names (table3..table5, fig4..fig11) or 'all'")
	insts := flag.Int64("insts", 400_000, "instructions per benchmark per configuration")
	benches := flag.String("benchmarks", "", "comma-separated benchmark subset (default: full suite)")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	opts := experiments.Options{Insts: *insts}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	var names []string
	if *run == "all" {
		for _, e := range experiments.Registry() {
			names = append(names, e.Name)
		}
	} else {
		names = strings.Split(*run, ",")
	}

	for _, name := range names {
		fn, err := experiments.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		rep := fn(opts)
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
