// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run table4,fig6,fig11 -insts 1000000
//	experiments -run fig8 -benchmarks gcc,swim -workers 4
//	experiments -run table5 -json > table5.json
//	experiments -run all -store results/   # recall cells simulated before
//
// With -store naming a directory, simulations are memoized in the on-disk
// result store (internal/resultdb) shared with cmd/sweep and waycached, so
// re-running experiments — or running them after a sweep over the same
// configurations — recalls results instead of re-simulating them.
//
// Each experiment prints the same rows/series the paper reports, produced
// by full simulations of the synthetic benchmark suite. Simulations run
// through the sweep engine (internal/sweep): -workers bounds the parallel
// simulations, and one memoized result store is shared across all selected
// experiments so common baselines are simulated once. -json replaces the
// text tables with a JSON array of {name, summary} objects.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"waycache/internal/experiments"
	"waycache/internal/resultdb"
	"waycache/internal/sweep"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment names (table3..table5, fig4..fig11) or 'all'")
	insts := flag.Int64("insts", 400_000, "instructions per benchmark per configuration")
	benches := flag.String("benchmarks", "", "comma-separated benchmark subset (default: full suite)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel simulations")
	storeDir := flag.String("store", "", "directory of the on-disk result store; repeated runs recall results instead of re-simulating")
	jsonOut := flag.Bool("json", false, "emit a JSON array of {name, summary} instead of text tables")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	// One engine for the whole invocation: experiments share its store, so
	// e.g. fig4..fig6 and table5 simulate their common baselines once.
	// With -store that memoization extends across invocations via disk.
	store := sweep.NewStore()
	if *storeDir != "" {
		var db *resultdb.DB
		var err error
		if store, db, err = sweep.OpenDiskStore(*storeDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if cerr := db.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "experiments: closing store:", cerr)
			}
		}()
	}
	eng := sweep.New(sweep.Options{Workers: *workers, Store: store})
	opts := experiments.Options{Insts: *insts, Workers: *workers, Engine: eng}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	var names []string
	if *run == "all" {
		for _, e := range experiments.Registry() {
			names = append(names, e.Name)
		}
	} else {
		names = strings.Split(*run, ",")
	}

	type jsonReport struct {
		Name    string             `json:"name"`
		Summary map[string]float64 `json:"summary"`
	}
	var reports []jsonReport

	for _, name := range names {
		fn, err := experiments.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		rep := fn(opts)
		if *jsonOut {
			reports = append(reports, jsonReport{Name: rep.Name, Summary: rep.Summary})
			fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
			continue
		}
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "[sweep store: %d simulations, %d memo hits, %d results in store]\n",
		eng.Store().Misses(), eng.Store().Hits(), eng.Store().Len())
	if berr := eng.Store().BackendErr(); berr != nil {
		fmt.Fprintln(os.Stderr, "experiments: warning: result store degraded:", berr)
	}
}
