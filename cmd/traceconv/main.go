// Command traceconv imports external trace formats into canonical .wct
// captures and manages the content-addressed trace store.
//
// Importing converts ChampSim binary, DynamoRIO drcachesim CSV, or
// Valgrind lackey --trace-mem text into the versioned .wct format
// (byte-level spec and reconciliation rules in docs/TRACE_FORMAT.md).
// Conversion is deterministic, so the output has one content hash
// everywhere; with -store the result lands in a content-addressed store
// and the printed trace://<hash> reference can be used directly as a
// benchmark's trace in sweeps and job submissions.
//
// Usage:
//
//	traceconv -format champsim -in trace.champsim -bench gcc -o gcc.wct
//	traceconv -format lackey -in lackey.out -bench gcc -store /var/traces
//	cat dr.csv | traceconv -format drcachesim -in - -bench mesa -o mesa.wct
//	traceconv -export -format lackey -bench gcc -n 50000 -o gcc.lackey
//	traceconv -store /var/traces -ls
//	traceconv -store /var/traces -gc 24h
//
// -export runs the loop backwards: it renders a suite benchmark's walker
// stream in an external format, which is how test fixtures and benchmark
// inputs are produced without third-party tracers.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"waycache/internal/trace"
	"waycache/internal/traceconv"
	"waycache/internal/tracestore"
	"waycache/internal/workload"
)

func main() {
	format := flag.String("format", "", "external format: "+strings.Join(traceconv.Names(), ", "))
	in := flag.String("in", "", "input file (\"-\" for stdin)")
	out := flag.String("o", "", "output .wct path (default <bench>.wct; with -export, the external-format output)")
	bench := flag.String("bench", "", "benchmark name recorded in the header (default: input basename)")
	n := flag.Int64("n", 0, "max instructions to convert or export (0 = all; -export requires > 0)")
	lossy := flag.Bool("lossy", false, "drop malformed records (reported) instead of failing on the first")
	storeDir := flag.String("store", "", "content-addressed trace store directory (imports are added; enables -ls/-gc)")
	export := flag.Bool("export", false, "reverse mode: render a suite benchmark walker in -format")
	ls := flag.Bool("ls", false, "list the hashes in -store")
	gc := flag.Duration("gc", 0, "collect unreferenced store objects older than this age")
	flag.Parse()

	if err := run(*format, *in, *out, *bench, *n, *lossy, *storeDir, *export, *ls, *gc); err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
}

func run(format, in, out, bench string, n int64, lossy bool, storeDir string, export, ls bool, gc time.Duration) error {
	switch {
	case ls:
		return runList(storeDir)
	case gc > 0:
		return runGC(storeDir, gc)
	case export:
		return runExport(format, bench, out, n)
	default:
		return runImport(format, in, out, bench, n, lossy, storeDir)
	}
}

func runImport(format, in, out, bench string, n int64, lossy bool, storeDir string) error {
	if format == "" {
		return fmt.Errorf("-format is required (have %s)", strings.Join(traceconv.Names(), ", "))
	}
	imp, err := traceconv.ByName(format)
	if err != nil {
		return err
	}
	if in == "" {
		return fmt.Errorf("-in is required (\"-\" reads stdin)")
	}
	var src io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
		if bench == "" {
			base := filepath.Base(in)
			bench = strings.TrimSuffix(base, filepath.Ext(base))
		}
	}
	if bench == "" {
		return fmt.Errorf("-bench is required when reading stdin")
	}
	if out == "" {
		out = bench + trace.FileExt
	}

	dst, err := os.Create(out)
	if err != nil {
		return err
	}
	sum := sha256.New()
	start := time.Now()
	st, err := traceconv.Convert(imp, src, io.MultiWriter(dst, sum), traceconv.Options{
		Benchmark: bench, MaxInsts: n, Lossy: lossy,
	})
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(out)
		return err
	}
	elapsed := time.Since(start)

	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	hash := hex.EncodeToString(sum.Sum(nil))
	fmt.Printf("imported %s: %d records -> %d instructions -> %s (%d bytes)\n",
		format, st.Records, st.Insts, out, fi.Size())
	if st.Dropped > 0 {
		fmt.Printf("dropped  %d records: %s\n", st.Dropped, st.DropSummary())
	}
	if secs := elapsed.Seconds(); secs > 0 {
		fmt.Printf("took     %v\n", elapsed.Round(time.Millisecond))
	}
	fmt.Printf("sha256   %s\n", hash)

	if storeDir != "" {
		s, err := tracestore.Open(storeDir)
		if err != nil {
			return err
		}
		stored, _, err := s.PutFile(out)
		if err != nil {
			return err
		}
		if stored != hash {
			return fmt.Errorf("store hashed %s but the written file hashed %s", stored, hash)
		}
		fmt.Printf("stored   %s\n", trace.FormatRef(hash))
	}
	return nil
}

func runExport(format, bench, out string, n int64) error {
	if n <= 0 {
		return fmt.Errorf("-export needs a positive -n")
	}
	exp, err := traceconv.ExporterFor(format)
	if err != nil {
		return err
	}
	p, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	if out == "" {
		out = bench + "." + format
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	wrote, err := exp(f, trace.NewLimit(p.NewWalker(), n), n)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(out)
		return err
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("exported %s: %d instructions -> %s (%d bytes)\n", format, wrote, out, fi.Size())
	return nil
}

func runList(storeDir string) error {
	if storeDir == "" {
		return fmt.Errorf("-ls needs -store")
	}
	s, err := tracestore.Open(storeDir)
	if err != nil {
		return err
	}
	hashes, err := s.Hashes()
	if err != nil {
		return err
	}
	for _, h := range hashes {
		p, err := s.Path(h)
		if err != nil {
			continue
		}
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		fmt.Printf("%s  %10d bytes  refs=%d\n", trace.FormatRef(h), fi.Size(), s.RefCount(h))
	}
	return nil
}

func runGC(storeDir string, minAge time.Duration) error {
	if storeDir == "" {
		return fmt.Errorf("-gc needs -store")
	}
	s, err := tracestore.Open(storeDir)
	if err != nil {
		return err
	}
	removed, err := s.GC(minAge)
	if err != nil {
		return err
	}
	for _, h := range removed {
		fmt.Printf("removed %s\n", trace.FormatRef(h))
	}
	fmt.Printf("gc: removed %d object(s)\n", len(removed))
	return nil
}
